"""Tests for streaming edge ingestion and the DynamicGraph facade."""

import pytest

from repro.arch.config import ChipConfig
from repro.graph.graph import DynamicGraph
from repro.graph.rpvo import Edge
from repro.runtime.device import AMCCADevice

from helpers import build_bfs_graph, random_edges


def make_plain_graph(chip=None, num_vertices=20, **kwargs):
    chip = chip or ChipConfig.small(edge_list_capacity=4)
    device = AMCCADevice(chip)
    graph = DynamicGraph(device, num_vertices, seed=1, **kwargs)
    return device, graph


class TestConstruction:
    def test_rejects_zero_vertices(self):
        device = AMCCADevice(ChipConfig.small())
        with pytest.raises(ValueError):
            DynamicGraph(device, 0)

    def test_roots_allocated_on_chip(self):
        device, graph = make_plain_graph(num_vertices=10)
        for vid in range(10):
            addr = graph.address_of(vid)
            block = device.get_object(addr)
            assert block.vid == vid and block.is_root

    def test_capacity_defaults_from_config(self):
        chip = ChipConfig.small(edge_list_capacity=7)
        _, graph = make_plain_graph(chip=chip)
        assert graph.capacity == 7
        assert graph.root_block(0).capacity == 7

    def test_string_allocator_resolved(self):
        _, graph = make_plain_graph(ghost_allocator="random")
        assert graph.ghost_allocator.name == "random"


class TestIngestion:
    def test_all_edges_stored(self):
        _, graph = make_plain_graph(num_vertices=30)
        edges = random_edges(30, 200, seed=2)
        graph.stream_increment(edges)
        assert graph.total_edges_stored() == 200

    def test_edge_multiset_preserved(self):
        """Every streamed (src, dst, weight) is found exactly once on the chip."""
        _, graph = make_plain_graph(num_vertices=25)
        edges = random_edges(25, 150, seed=3, weights=True)
        graph.stream_increment(edges)
        expected: dict = {}
        for e in edges:
            expected[(e.src, e.dst, e.weight)] = expected.get((e.src, e.dst, e.weight), 0) + 1
        stored: dict = {}
        for vid in range(25):
            for dst, w in graph.edges_of(vid):
                stored[(vid, dst, w)] = stored.get((vid, dst, w), 0) + 1
        assert stored == expected

    def test_no_block_exceeds_capacity(self):
        _, graph = make_plain_graph(num_vertices=10)
        # Hot vertex 0 gets 50 out-edges: must overflow into ghosts.
        edges = [Edge(0, 1 + (i % 9)) for i in range(50)]
        graph.stream_increment(edges)
        for block in graph.blocks_of(0):
            assert block.degree_local <= block.capacity
        assert graph.degree(0) == 50

    def test_ghost_chain_grows_for_hot_vertex(self):
        _, graph = make_plain_graph(num_vertices=10)
        edges = [Edge(0, 1 + (i % 9)) for i in range(40)]
        graph.stream_increment(edges)
        assert graph.ghost_blocks_allocated >= 40 // graph.capacity - 1
        assert graph.ghost_chain_depth(0) >= 2

    def test_root_mirror_sees_every_insert(self):
        _, graph = make_plain_graph(num_vertices=10)
        edges = [Edge(0, 1 + (i % 9)) for i in range(30)]
        graph.stream_increment(edges)
        assert len(graph.root_block(0).mirror) == 30

    def test_ingestor_counters(self):
        _, graph = make_plain_graph(num_vertices=10)
        edges = [Edge(0, 1 + (i % 9)) for i in range(20)]
        graph.stream_increment(edges)
        ing = graph.ingestor
        assert ing.edges_inserted == 20
        assert ing.ghosts_allocated >= 1
        assert ing.future_enqueues >= 1

    def test_stream_multiple_increments_accumulates(self):
        _, graph = make_plain_graph(num_vertices=30)
        for k in range(3):
            graph.stream_increment(random_edges(30, 60, seed=k))
        assert graph.increments_streamed == 3
        assert graph.edges_streamed == 180
        assert graph.total_edges_stored() == 180
        assert len(graph.per_increment_cycles()) == 3

    def test_stream_helper_runs_all_increments(self):
        _, graph = make_plain_graph(num_vertices=20)
        increments = [random_edges(20, 30, seed=k) for k in range(4)]
        results = graph.stream(increments)
        assert len(results) == 4
        assert graph.total_edges_stored() == 120

    def test_random_allocator_also_preserves_edges(self):
        _, graph = make_plain_graph(num_vertices=10, ghost_allocator="random")
        edges = [Edge(0, 1 + (i % 9)) for i in range(40)]
        graph.stream_increment(edges)
        assert graph.degree(0) == 40


class TestReadBack:
    def test_to_networkx_matches_streamed_edges(self):
        _, graph = make_plain_graph(num_vertices=15)
        edges = random_edges(15, 80, seed=5)
        graph.stream_increment(edges)
        g = graph.to_networkx()
        assert g.number_of_nodes() == 15
        assert g.number_of_edges() == len({(e.src, e.dst) for e in edges})

    def test_to_networkx_undirected(self):
        _, graph = make_plain_graph(num_vertices=10)
        graph.stream_increment([Edge(0, 1), Edge(1, 0)])
        assert graph.to_networkx(directed=False).number_of_edges() == 1

    def test_vertex_state_default(self):
        _, graph = make_plain_graph()
        assert graph.vertex_state(0, "level", "missing") == "missing"

    def test_ghost_report_fields(self):
        _, graph = make_plain_graph(num_vertices=10)
        graph.stream_increment([Edge(0, 1 + (i % 9)) for i in range(30)])
        report = graph.ghost_report()
        assert report["ghost_blocks"] >= 1
        assert report["allocator"] == "vicinity"
        assert report["max_depth"] >= 1


class TestLatencyFidelity:
    def test_ingestion_works_in_latency_mode(self):
        chip = ChipConfig.small(edge_list_capacity=4, fidelity="latency")
        _, graph = make_plain_graph(chip=chip, num_vertices=20)
        edges = random_edges(20, 100, seed=7)
        graph.stream_increment(edges)
        assert graph.total_edges_stored() == 100


class TestIngestOnlyFlag:
    def test_ingest_only_does_not_run_bfs(self, small_chip):
        _, graph, bfs = build_bfs_graph(small_chip, 20, root=0, ingest_only=True)
        graph.stream_increment(random_edges(20, 100, seed=9))
        # only the seeded root has a level
        assert bfs.results(graph) == {0: 0}
