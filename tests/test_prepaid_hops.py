"""Pinning tests for the prepaid-hops truncation accounting.

The fast cycle NoCs (python, numpy, native) and the latency model prepay a
message's whole flit-hop charge at injection; the per-hop-accruing
``cycle-ref`` model is the executable spec of what was actually traversed.
``untraversed_hops()`` / ``SimStats.hops_untraversed`` turn the documented
truncation caveat into explicit accounting, pinned here by reconciling the
fast models against the reference mid-flight:

    fast.stats.hops - fast.untraversed_hops() == ref.stats.hops

at every cycle, with the remainder identically 0 at quiescence.
"""

import random

import pytest

from repro.arch.config import ChipConfig
from repro.arch.message import Message
from repro.arch.noc import (
    CycleAccurateNoC,
    LatencyNoC,
    ReferenceCycleAccurateNoC,
)
from repro.arch.routing import make_routing
from repro.arch.stats import SimStats
from repro.harness import ChipSpec, DatasetSpec, RunOptions, Scenario
from repro.harness.runner import run_scenario

from helpers import requires_numpy

try:
    from repro.arch._native import _sweep as _native_sweep
except ImportError:  # pragma: no cover - optional extension absent
    _native_sweep = None

requires_native = pytest.mark.skipif(
    _native_sweep is None, reason="native sweep extension not built")


def _build(model_cls, width=6, height=6, max_message_words=4):
    cfg = ChipConfig(width=width, height=height,
                     max_message_words=max_message_words)
    stats = SimStats(num_cells=cfg.num_cells)
    pol = make_routing(cfg)
    return model_cls(cfg, pol, stats)


def _schedule(num_cells, n=250, seed=11):
    """A deterministic burst of (cycle, src, dst, size) injections."""
    rng = random.Random(seed)
    return sorted(
        (rng.randrange(30), rng.randrange(num_cells),
         rng.randrange(num_cells), rng.randrange(1, 12))
        for _ in range(n)
    )


def _drive(noc, injections, stop_cycle):
    """Inject per schedule and advance up to (excluding) ``stop_cycle``."""
    pending = list(injections)
    for cycle in range(stop_cycle):
        while pending and pending[0][0] == cycle:
            _, src, dst, size = pending.pop(0)
            noc.inject(Message(src=src, dst=dst, action="a", size_words=size),
                       cycle)
        noc.advance(cycle)
    assert not pending, "schedule extends past the driven window"


def _drain(noc, start_cycle, max_cycles=50_000):
    cycle = start_cycle
    while not noc.is_empty and cycle < max_cycles:
        noc.advance(cycle)
        cycle += 1
    assert noc.is_empty


def _fast_vs_ref(make_fast):
    fast = make_fast()
    ref = _build(ReferenceCycleAccurateNoC)
    injections = _schedule(fast.config.num_cells)

    # Truncate mid-flight: the prepaid models must reconcile with the
    # reference's accrued hops through the untraversed remainder.
    _drive(fast, injections, 35)
    _drive(ref, injections, 35)
    assert fast.in_flight == ref.in_flight > 0
    assert ref.untraversed_hops() == 0
    assert fast.untraversed_hops() > 0
    assert fast.stats.hops - fast.untraversed_hops() == ref.stats.hops

    # At quiescence the remainder vanishes and the totals agree exactly.
    _drain(fast, 35)
    _drain(ref, 35)
    assert fast.untraversed_hops() == 0
    assert fast.stats.hops == ref.stats.hops


def test_cycle_noc_reconciles_with_reference():
    _fast_vs_ref(lambda: _build(CycleAccurateNoC))


@requires_numpy
def test_numpy_vector_mode_reconciles_with_reference():
    from repro.arch.kernels import NumpyCycleAccurateNoC

    def make():
        noc = _build(NumpyCycleAccurateNoC)
        noc._enter_at = 4  # force vector mode on tiny sweeps
        return noc

    _fast_vs_ref(make)


@requires_native
def test_native_kernel_reconciles_with_reference():
    from repro.arch.kernels import NativeCycleAccurateNoC

    _fast_vs_ref(lambda: _build(NativeCycleAccurateNoC))


def test_latency_noc_charges_everything_up_front():
    noc = _build(LatencyNoC)
    noc.inject(Message(src=0, dst=35, action="a", size_words=9), 0)
    # Nothing traversed yet: the whole distance x flits charge is pending.
    assert noc.untraversed_hops() == noc.stats.hops > 0
    _drain(noc, 1)
    assert noc.untraversed_hops() == 0


def _trunc_scenario(**overrides):
    kwargs = dict(
        name="prepaid-trunc",
        dataset=DatasetSpec(vertices=80, edges=600, sampling="snowball",
                            seed=3),
        chip=ChipSpec(side=4, edge_list_capacity=8),
        algorithm="bfs",
        options=RunOptions(max_cycles_per_increment=40),
    )
    kwargs.update(overrides)
    return Scenario(**kwargs)


def test_record_exposes_untraversed_remainder():
    record = run_scenario(_trunc_scenario())
    stats = record["stats"]
    # The budget truncates mid-flight, so the remainder is visible...
    assert stats["hops_untraversed"] > 0
    assert stats["hops_untraversed"] < stats["hops"]
    # ...and a quiescent run of the same workload accounts a clean zero.
    quiesced = run_scenario(
        _trunc_scenario(options=RunOptions()))
    assert quiesced["stats"]["hops_untraversed"] == 0


@requires_numpy
def test_record_remainder_is_kernel_invariant():
    scenario = _trunc_scenario()
    assert run_scenario(scenario, kernel="numpy") == run_scenario(scenario)
