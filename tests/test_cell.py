"""Tests for the compute cell: memory, task execution, one operation per cycle."""

import pytest

from repro.arch.address import Address
from repro.arch.cell import ComputeCell, Task
from repro.arch.message import Message


def make_cell(cc_id=0):
    return ComputeCell(cc_id, 0, 0)


def simple_task(cost=1, messages=None, label="t"):
    msgs = messages or []
    return Task(lambda: (cost, list(msgs)), label=label)


class TestMemory:
    def test_allocate_returns_local_address(self):
        cell = make_cell(3)
        addr = cell.allocate({"x": 1}, words=5)
        assert addr.cc_id == 3
        assert cell.get(addr) == {"x": 1}
        assert cell.memory_words == 5

    def test_allocate_unique_object_ids(self):
        cell = make_cell()
        addrs = [cell.allocate(i) for i in range(10)]
        assert len({a.obj_id for a in addrs}) == 10

    def test_deallocate_frees_words(self):
        cell = make_cell()
        addr = cell.allocate("obj", words=4)
        cell.deallocate(addr, words=4)
        assert cell.memory_words == 0
        with pytest.raises(KeyError):
            cell.get(addr)

    def test_get_remote_address_raises(self):
        cell = make_cell(0)
        with pytest.raises(ValueError):
            cell.get(Address(1, 0))

    def test_deallocate_remote_address_raises(self):
        cell = make_cell(0)
        with pytest.raises(ValueError):
            cell.deallocate(Address(2, 0))

    def test_allocation_counter(self):
        cell = make_cell()
        for i in range(4):
            cell.allocate(i)
        assert cell.allocations == 4


class TestContinuations:
    def test_register_and_pop(self):
        cell = make_cell()
        cid = cell.register_continuation(lambda v: v)
        fn = cell.pop_continuation(cid)
        assert fn(7) == 7
        with pytest.raises(KeyError):
            cell.pop_continuation(cid)

    def test_ids_are_unique(self):
        cell = make_cell()
        ids = {cell.register_continuation(lambda v: v) for _ in range(5)}
        assert len(ids) == 5


class TestExecution:
    def test_idle_cell_does_nothing(self):
        cell = make_cell()
        assert cell.step() is None
        assert not cell.has_work

    def test_single_cycle_task(self):
        cell = make_cell()
        cell.enqueue_task(simple_task(cost=1))
        assert cell.step() == "compute"
        assert cell.step() is None
        assert cell.tasks_executed == 1
        assert cell.instructions_executed == 1

    def test_multi_cycle_task_charges_each_cycle(self):
        cell = make_cell()
        cell.enqueue_task(simple_task(cost=3))
        ops = [cell.step() for _ in range(4)]
        assert ops == ["compute", "compute", "compute", None]
        assert cell.instructions_executed == 3

    def test_minimum_cost_is_one(self):
        cell = make_cell()
        cell.enqueue_task(simple_task(cost=0))
        assert cell.step() == "compute"
        assert cell.step() is None

    def test_messages_released_after_instructions(self):
        msg = Message(src=0, dst=1, action="a")
        cell = make_cell()
        cell.enqueue_task(simple_task(cost=2, messages=[msg]))
        assert cell.step() == "compute"      # first instruction
        assert not cell.staging              # message held until cost charged
        assert cell.step() == "compute"      # second instruction -> release
        assert cell.step() == "stage"        # staging takes its own cycle
        assert cell.pop_staged() is msg

    def test_one_staging_per_cycle(self):
        msgs = [Message(src=0, dst=1, action="a") for _ in range(3)]
        cell = make_cell()
        cell.enqueue_task(simple_task(cost=1, messages=msgs))
        assert cell.step() == "compute"
        staged = []
        for _ in range(3):
            assert cell.step() == "stage"
            staged.append(cell.pop_staged())
        assert staged == msgs
        assert cell.step() is None
        assert cell.messages_staged == 3

    def test_staging_drains_before_next_task(self):
        msg = Message(src=0, dst=1, action="a")
        cell = make_cell()
        cell.enqueue_task(simple_task(cost=1, messages=[msg]))
        cell.enqueue_task(simple_task(cost=1, label="second"))
        assert cell.step() == "compute"
        assert cell.step() == "stage"
        cell.pop_staged()
        assert cell.step() == "compute"  # only now does the second task start
        assert cell.tasks_executed == 2

    def test_has_work_reflects_all_queues(self):
        cell = make_cell()
        assert not cell.has_work
        cell.enqueue_task(simple_task())
        assert cell.has_work
        cell.step()
        assert not cell.has_work

    def test_busy_cycles_counter(self):
        cell = make_cell()
        cell.enqueue_task(simple_task(cost=2))
        cell.step()
        cell.step()
        assert cell.busy_cycles == 2


class TestTaskRepr:
    def test_task_label(self):
        task = simple_task(label="insert-edge")
        assert "insert-edge" in repr(task)
