"""Tests for the chip configuration (geometry, validation, time conversion)."""

import pytest
from hypothesis import given, strategies as st

from repro.arch.config import ChipConfig


class TestValidation:
    def test_defaults_are_paper_chip(self):
        cfg = ChipConfig.paper_chip()
        assert cfg.width == 32 and cfg.height == 32
        assert cfg.routing == "yx"
        assert cfg.clock_ghz == 1.0

    def test_small_preset(self):
        cfg = ChipConfig.small()
        assert cfg.num_cells == 64

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            ChipConfig(width=0, height=4)
        with pytest.raises(ValueError):
            ChipConfig(width=4, height=-1)

    def test_rejects_unknown_routing(self):
        with pytest.raises(ValueError):
            ChipConfig(routing="zigzag")

    def test_rejects_unknown_fidelity(self):
        with pytest.raises(ValueError):
            ChipConfig(fidelity="magic")

    def test_rejects_unknown_io_side(self):
        with pytest.raises(ValueError):
            ChipConfig(io_sides=("west", "up"))

    def test_rejects_bad_clock_and_capacity(self):
        with pytest.raises(ValueError):
            ChipConfig(clock_ghz=0)
        with pytest.raises(ValueError):
            ChipConfig(edge_list_capacity=0)
        with pytest.raises(ValueError):
            ChipConfig(ghost_slots=0)

    def test_with_override(self):
        cfg = ChipConfig.paper_chip(width=16, height=8)
        assert (cfg.width, cfg.height) == (16, 8)
        cfg2 = cfg.with_(routing="xy")
        assert cfg2.routing == "xy" and cfg.routing == "yx"


class TestGeometry:
    def test_coords_roundtrip(self):
        cfg = ChipConfig(width=5, height=3)
        for cc in range(cfg.num_cells):
            x, y = cfg.coords_of(cc)
            assert cfg.cc_at(x, y) == cc

    def test_coords_out_of_range(self):
        cfg = ChipConfig(width=4, height=4)
        with pytest.raises(ValueError):
            cfg.coords_of(16)
        with pytest.raises(ValueError):
            cfg.cc_at(4, 0)

    def test_manhattan_distance(self):
        cfg = ChipConfig(width=8, height=8)
        a = cfg.cc_at(0, 0)
        b = cfg.cc_at(7, 7)
        assert cfg.manhattan(a, b) == 14
        assert cfg.manhattan(a, a) == 0

    def test_neighbors_corner_edge_interior(self):
        cfg = ChipConfig(width=4, height=4)
        assert len(cfg.neighbors(cfg.cc_at(0, 0))) == 2
        assert len(cfg.neighbors(cfg.cc_at(1, 0))) == 3
        assert len(cfg.neighbors(cfg.cc_at(1, 1))) == 4

    def test_neighbors_are_adjacent(self):
        cfg = ChipConfig(width=6, height=5)
        for cc in range(cfg.num_cells):
            for n in cfg.neighbors(cc):
                assert cfg.manhattan(cc, n) == 1

    def test_cells_within_radius(self):
        cfg = ChipConfig(width=8, height=8)
        center = cfg.cc_at(4, 4)
        within2 = cfg.cells_within(center, 2)
        assert center in within2
        assert all(cfg.manhattan(center, c) <= 2 for c in within2)
        # A full (non-clipped) 2-hop diamond has 13 cells.
        assert len(within2) == 13

    def test_cells_within_clipped_at_border(self):
        cfg = ChipConfig(width=8, height=8)
        corner = cfg.cc_at(0, 0)
        within2 = cfg.cells_within(corner, 2)
        assert len(within2) == 6  # quarter diamond

    @given(st.integers(min_value=2, max_value=12), st.integers(min_value=2, max_value=12))
    def test_property_every_cell_has_2_to_4_neighbors(self, w, h):
        cfg = ChipConfig(width=w, height=h)
        for cc in range(cfg.num_cells):
            assert 2 <= len(cfg.neighbors(cc)) <= 4


class TestTime:
    def test_cycles_to_seconds_at_1ghz(self):
        cfg = ChipConfig(clock_ghz=1.0)
        assert cfg.cycles_to_seconds(1_000_000_000) == pytest.approx(1.0)

    def test_cycles_to_microseconds(self):
        cfg = ChipConfig(clock_ghz=1.0)
        assert cfg.cycles_to_microseconds(1000) == pytest.approx(1.0)

    def test_faster_clock_is_shorter_time(self):
        slow = ChipConfig(clock_ghz=1.0)
        fast = ChipConfig(clock_ghz=2.0)
        assert fast.cycles_to_seconds(100) < slow.cycles_to_seconds(100)
