"""Edge-case tests: messages, disconnected snowball discovery, multi-run devices."""


from repro.arch.address import Address
from repro.arch.config import ChipConfig
from repro.arch.message import Message
from repro.algorithms.bfs import StreamingBFS
from repro.datasets.sampling import _discovery_order, snowball_sampling_increments
from repro.graph.graph import DynamicGraph
from repro.graph.rpvo import Edge
from repro.runtime.device import AMCCADevice

from helpers import build_bfs_graph


class TestMessage:
    def test_position_starts_at_source(self):
        msg = Message(src=3, dst=9, action="a")
        assert msg.position == 3

    def test_unique_monotonic_ids(self):
        a, b = Message(0, 1, "x"), Message(0, 1, "x")
        assert b.msg_id > a.msg_id

    def test_latency_requires_both_timestamps(self):
        msg = Message(src=0, dst=1, action="a")
        assert msg.latency == -1
        msg.created_cycle = 5
        msg.delivered_cycle = 9
        assert msg.latency == 4

    def test_flit_count_rounds_up(self):
        msg = Message(src=0, dst=1, action="a", size_words=9)
        assert msg.flits(4) == 3
        assert msg.flits(0) == 1  # degenerate flit width treated as one flit
        assert Message(src=0, dst=1, action="a", size_words=1).flits(8) == 1


class TestSnowballDiscovery:
    def test_disconnected_vertices_appended_last(self):
        edges = [Edge(0, 1), Edge(1, 2)]
        order = _discovery_order(edges, num_vertices=6, seed_vertex=0)
        assert order[:3] == [0, 1, 2]
        assert sorted(order[3:]) == [3, 4, 5]
        assert len(order) == 6

    def test_seed_vertex_is_first(self):
        edges = [Edge(2, 3), Edge(3, 4)]
        order = _discovery_order(edges, num_vertices=5, seed_vertex=2)
        assert order[0] == 2

    def test_snowball_on_disconnected_graph_keeps_all_edges(self):
        edges = [Edge(0, 1), Edge(2, 3), Edge(4, 5)]
        increments = snowball_sampling_increments(edges, 6, num_increments=3, seed=1)
        assert sum(len(c) for c in increments) == 3


class TestMultiRunDevice:
    def test_two_graphs_can_share_one_device(self):
        """Two independent vertex sets on the same chip do not interfere."""
        device = AMCCADevice(ChipConfig.small(edge_list_capacity=4))
        graph_a = DynamicGraph(device, 10, seed=1)
        bfs_a = StreamingBFS(root=0)
        graph_a.attach(bfs_a)
        bfs_a.seed(graph_a, root=0)
        graph_a.stream_increment([Edge(0, 1), Edge(1, 2)])

        graph_b = DynamicGraph(device, 5, seed=2)
        graph_b.stream_increment([Edge(3, 4)])

        assert bfs_a.results(graph_a) == {0: 0, 1: 1, 2: 2}
        assert graph_b.degree(3) == 1
        assert graph_a.degree(0) == 1

    def test_streaming_after_query_algorithm(self):
        """Ingestion keeps working after a query diffusion ran on the device."""
        from repro.algorithms.triangles import TriangleCounting
        from repro.datasets.sbm import symmetrize

        device = AMCCADevice(ChipConfig.small(edge_list_capacity=6))
        graph = DynamicGraph(device, 12, seed=4)
        tc = TriangleCounting()
        graph.attach(tc)
        first = symmetrize([Edge(0, 1), Edge(1, 2), Edge(0, 2)])
        graph.stream_increment(first)
        tc.run(graph)
        assert tc.results(graph)["total"] == 1

        second = symmetrize([Edge(2, 3), Edge(3, 0)])
        graph.stream_increment(second)
        tc2 = TriangleCounting()
        # Re-running the query over the grown graph counts the new triangle too.
        graph.attach(tc2)
        for vid in range(12):
            graph.root_block(vid).state["triangles"] = 0
        tc2.run(graph)
        assert tc2.results(graph)["total"] == 2

    def test_empty_increment_is_a_noop(self, small_chip):
        _, graph, bfs = build_bfs_graph(small_chip, 10, root=0)
        result = graph.stream_increment([])
        assert result.extra["edges"] == 0
        assert graph.total_edges_stored() == 0

    def test_self_edge_roundtrip(self, small_chip):
        """A self loop is stored and does not break BFS termination."""
        _, graph, bfs = build_bfs_graph(small_chip, 5, root=0)
        graph.stream_increment([Edge(0, 0), Edge(0, 1)])
        assert graph.degree(0) == 2
        assert bfs.results(graph)[1] == 1

    def test_large_operand_messages_still_delivered(self, small_chip):
        """Multi-flit messages (oversized payloads) arrive intact."""
        device = AMCCADevice(small_chip)
        payloads = []
        device.register_action(
            "bulk", lambda ctx, obj, data: payloads.append(data), size_words=64
        )
        device.send("bulk", Address(30, -1), tuple(range(50)))
        device.run(max_cycles=500)
        assert payloads == [tuple(range(50))]
