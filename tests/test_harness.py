"""Tests for the experiment harness: specs, registry, store, runner, report."""

from __future__ import annotations

import json

import pytest

from repro.harness import (
    ChipSpec,
    DatasetSpec,
    ResultStore,
    Scenario,
    get_suite,
    list_suites,
    register_suite,
    run_scenario,
    run_suite,
    table2_rows_from_records,
)
from repro.algorithms.registry import algorithm_names
from repro.harness.scenario import RunOptions

from helpers import requires_numpy


def tiny_scenario(name="t", algorithm="ingest", **dataset_kwargs) -> Scenario:
    """A scenario small enough that running it takes well under a second."""
    defaults = dict(vertices=64, edges=256, sampling="edge", seed=3)
    defaults.update(dataset_kwargs)
    return Scenario(
        name=name,
        dataset=DatasetSpec(**defaults),
        chip=ChipSpec(side=4),
        algorithm=algorithm,
    )


def four_scenario_suite():
    """4 scenarios mixing algorithms and sampling orders (all tiny)."""
    return [
        tiny_scenario("s1", "ingest"),
        tiny_scenario("s2", "bfs"),
        tiny_scenario("s3", "bfs", sampling="snowball"),
        tiny_scenario("s4", "components", symmetric=True),
    ]


class TestScenarioSpec:
    def test_round_trip(self):
        for scenario in four_scenario_suite():
            rebuilt = Scenario.from_dict(scenario.spec_dict())
            assert rebuilt == scenario
            assert rebuilt.spec_hash() == scenario.spec_hash()

    def test_registry_suites_round_trip(self):
        for suite in list_suites():
            for scenario in get_suite(suite.name):
                assert Scenario.from_dict(scenario.spec_dict()) == scenario

    def test_spec_hash_stable_across_instances(self):
        a = tiny_scenario("same")
        b = tiny_scenario("same")
        assert a is not b
        assert a.spec_hash() == b.spec_hash()

    def test_spec_hash_ignores_dict_ordering(self):
        scenario = tiny_scenario("ordered")
        spec = scenario.spec_dict()
        # Round-trip through a JSON dict with reversed key order.
        shuffled = json.loads(json.dumps(spec, sort_keys=True))
        reordered = {k: shuffled[k] for k in reversed(list(shuffled))}
        assert Scenario.from_dict(reordered).spec_hash() == scenario.spec_hash()

    def test_spec_hash_sensitive_to_every_layer(self):
        base = tiny_scenario("base")
        variants = [
            base.with_(name="renamed"),
            base.with_(algorithm="bfs"),
            base.with_(dataset=DatasetSpec(vertices=64, edges=257, seed=3)),
            base.with_(chip=ChipSpec(side=8)),
            base.with_(options=RunOptions(ghost_allocator="random")),
        ]
        hashes = {base.spec_hash()} | {v.spec_hash() for v in variants}
        assert len(hashes) == len(variants) + 1

    def test_spec_hash_sensitive_to_repro_version(self, monkeypatch):
        scenario = tiny_scenario("versioned")
        before = scenario.spec_hash()
        monkeypatch.setattr("repro.harness.scenario.__version__", "0.0.0-test")
        assert scenario.spec_hash() != before

    def test_graph_seed_independent_of_name_and_version(self, monkeypatch):
        # Renaming a scenario or bumping the repro version must not change
        # the experiment's RNG (only the cache key), so results stay
        # comparable across releases.
        a, b = tiny_scenario("name-a"), tiny_scenario("name-b")
        assert a.spec_hash() != b.spec_hash()
        assert a.graph_seed() == b.graph_seed()
        before = a.graph_seed()
        monkeypatch.setattr("repro.harness.scenario.__version__", "0.0.0-test")
        assert a.graph_seed() == before
        # Distinct physical specs still decorrelate.
        assert tiny_scenario("name-a", "bfs").graph_seed() != before

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            tiny_scenario(algorithm="quantum")

    def test_algorithm_list_matches_registry_usage(self):
        for suite in list_suites():
            for scenario in get_suite(suite.name):
                assert scenario.algorithm in algorithm_names()

    def test_algorithms_suite_covers_whole_registry(self):
        # The algorithms sweep enumerates the registry, so a drop-in
        # workload file gets a suite scenario with no harness change.
        names = {s.algorithm for s in get_suite("algorithms")}
        assert names == set(algorithm_names())
        assert {"kcore", "labelprop"} <= names


class TestRegistry:
    def test_builtin_suites_present(self):
        names = {suite.name for suite in list_suites()}
        assert {"tiny", "paper-tiny", "paper-small", "chip-sweep",
                "sampling-sweep", "algorithms", "fidelity-sweep"} <= names

    def test_paper_tiny_has_at_least_eight_scenarios(self):
        assert len(get_suite("paper-tiny")) >= 8

    def test_unknown_suite_raises(self):
        with pytest.raises(KeyError):
            get_suite("no-such-suite")

    def test_register_and_fetch_custom_suite(self, monkeypatch):
        from repro.harness import registry
        # Work on a copy of the registry so the global suite set is
        # unchanged for other tests regardless of execution order.
        monkeypatch.setattr(registry, "_SUITES", dict(registry._SUITES))
        register_suite("test-custom", "registered by the test suite",
                       lambda: [tiny_scenario("custom")])
        scenarios = get_suite("test-custom")
        assert [s.name for s in scenarios] == ["custom"]


class TestResultStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        record = {"spec_hash": "abc", "value": 1}
        store.put(record)
        reloaded = ResultStore(tmp_path / "store.jsonl")
        assert reloaded.get("abc") == record
        assert "abc" in reloaded and len(reloaded) == 1

    def test_replace_compacts_file(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.put({"spec_hash": "abc", "value": 1})
        store.put({"spec_hash": "xyz", "value": 2})
        store.put({"spec_hash": "abc", "value": 3})
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert ResultStore(path).get("abc")["value"] == 3

    def test_put_many_mixed_append_and_replace(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.put_many([{"spec_hash": "a", "value": 1},
                        {"spec_hash": "b", "value": 2}])
        store.put_many([{"spec_hash": "a", "value": 3},
                        {"spec_hash": "c", "value": 4}])
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3
        reloaded = ResultStore(path)
        assert reloaded.get("a")["value"] == 3
        assert reloaded.get("c")["value"] == 4

    def test_record_without_hash_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        with pytest.raises(ValueError):
            store.put({"value": 1})

    def test_corrupt_line_reported(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_text('{"spec_hash": "ok"}\nnot json\n')
        with pytest.raises(ValueError, match="corrupt"):
            ResultStore(path)


class TestRunner:
    @requires_numpy
    def test_cache_miss_then_hit(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        suite = [tiny_scenario("s1", "ingest"), tiny_scenario("s2", "bfs")]
        first = run_suite(suite, store=store)
        assert (first.cache_hits, first.cache_misses) == (0, 2)
        second = run_suite(suite, store=store)
        assert (second.cache_hits, second.cache_misses) == (2, 0)
        assert second.records == first.records

    @requires_numpy
    def test_force_recomputes_without_duplicates(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        suite = [tiny_scenario("s1", "ingest")]
        run_suite(suite, store=store)
        forced = run_suite(suite, store=store, force=True)
        assert (forced.cache_hits, forced.cache_misses) == (0, 1)
        assert len(path.read_text().strip().splitlines()) == 1

    @requires_numpy
    def test_parallel_results_byte_identical_to_serial(self, tmp_path):
        suite = four_scenario_suite()
        serial_store = ResultStore(tmp_path / "serial.jsonl")
        parallel_store = ResultStore(tmp_path / "parallel.jsonl")
        serial = run_suite(suite, jobs=1, store=serial_store)
        parallel = run_suite(four_scenario_suite(), jobs=4, store=parallel_store)
        assert serial.records == parallel.records
        assert (tmp_path / "serial.jsonl").read_bytes() == \
               (tmp_path / "parallel.jsonl").read_bytes()

    @requires_numpy
    def test_record_shape(self):
        record = run_scenario(tiny_scenario("shape", "bfs"))
        assert record["spec_hash"] == tiny_scenario("shape", "bfs").spec_hash()
        assert len(record["increment_cycles"]) == 10
        assert record["total_cycles"] == sum(record["increment_cycles"])
        assert record["edges_stored"] == 256
        assert record["algo_metrics"]["reached"] >= 1
        # Records must stay JSON-serialisable and deterministic.
        assert json.loads(json.dumps(record)) == record

    @requires_numpy
    def test_intra_suite_duplicates_run_once(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        twin_a, twin_b = tiny_scenario("twin"), tiny_scenario("twin")
        report = run_suite([twin_a, twin_b], store=store)
        assert len(report.outcomes) == 2
        assert report.cache_misses == 1 and report.cache_hits == 1
        assert report.outcomes[0].record == report.outcomes[1].record


class TestReport:
    @requires_numpy
    def test_table2_pairs_ingest_with_bfs(self):
        suite = [tiny_scenario("pair-ingest", "ingest"),
                 tiny_scenario("pair-bfs", "bfs")]
        report = run_suite(suite)
        rows = table2_rows_from_records(report.records)
        assert len(rows) == 1
        row = rows[0]
        assert row["Ingestion & BFS Energy (uJ)"] > row["Ingestion Energy (uJ)"]
