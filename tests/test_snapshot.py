"""repro.snapshot: deterministic checkpoint/restore of mid-stream chip state.

Pins the subsystem's hard invariant — a simulator restored from a snapshot
produces a bit-identical schedule (and identical records, stats and
stores) to the uninterrupted run from that point — at every increment
boundary of a test scenario, on both NoC kernels, plus the wire format's
round-trip/corruption/versioning behaviour and the capture guard rails.
"""

from __future__ import annotations

import json
import struct

import pytest

from helpers import requires_numpy

from repro import __version__
from repro._compat import HAVE_NUMPY
from repro.arch.config import ChipConfig
from repro.arch.message import Message
from repro.arch.simulator import Simulator
from repro.graph.rpvo import Edge, EdgeSlot, VertexBlock
from repro.arch.address import Address
from repro.harness.runner import (
    restore_scenario,
    resume_scenario,
    run_scenario,
    snapshot_at,
)
from repro.harness.scenario import ChipSpec, DatasetSpec, Scenario
from repro.snapshot import (
    Snapshot,
    SnapshotError,
    capture,
    capture_simulator,
    restore_simulator,
)
from repro.snapshot.format import pack_value, unpack_value


def tiny_scenario(**overrides) -> Scenario:
    """A 6-increment scenario small enough to restore at every boundary."""
    fields = dict(
        name="snap-tiny",
        dataset=DatasetSpec(vertices=60, edges=400, num_increments=6, seed=3),
        chip=ChipSpec(side=8, edge_list_capacity=4),
        algorithm="bfs",
    )
    fields.update(overrides)
    return Scenario(**fields)


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
class TestFormat:
    def test_value_codec_round_trip(self):
        value = {
            "none": None,
            "bools": (True, False),
            "int": 42,
            "neg": -7,
            "big": 1 << 80,
            "float": 3.141592653589793,
            "str": "schnappschuß",
            "bytes": b"\x00\xff",
            "ints": [1, 2, 3, 1 << 40],
            "mixed": [1, "two", None],
            "nested": {("a", 1): {"x": [Address(3, 4)]}},
            "edge": Edge(1, 2, 9),
            "slot": EdgeSlot(dst_addr=Address(5, 6), dst_vid=7, weight=2),
            7: "int key",
        }
        assert unpack_value(pack_value(value)) == value

    def test_int_array_round_trip_exact(self):
        series = [0, 1, -1, (1 << 62), -(1 << 62)]
        assert unpack_value(pack_value(series)) == series

    def test_unencodable_value_is_actionable(self):
        with pytest.raises(SnapshotError, match="cannot serialise"):
            pack_value({"fn": lambda: None})

    def test_snapshot_bytes_round_trip(self):
        snap = Snapshot({"repro_version": __version__, "k": 1}, {"body": [1, 2]})
        clone = Snapshot.from_bytes(snap.to_bytes())
        assert clone.meta == snap.meta
        assert clone.body == snap.body
        assert clone.state_hash == snap.state_hash

    def test_bad_magic_is_rejected(self):
        data = Snapshot({"repro_version": __version__}, {}).to_bytes()
        with pytest.raises(SnapshotError, match="bad magic"):
            Snapshot.from_bytes(b"XX" + data[2:])

    def test_unknown_schema_version_is_rejected(self):
        data = bytearray(Snapshot({"repro_version": __version__}, {}).to_bytes())
        data[6:8] = struct.pack(">H", 99)
        with pytest.raises(SnapshotError, match="schema v99"):
            Snapshot.from_bytes(bytes(data))

    def test_corrupted_body_is_rejected(self):
        data = bytearray(Snapshot({"v": 1}, {"series": list(range(64))}).to_bytes())
        data[-40] ^= 0xFF  # flip a bit inside the body/digest region
        with pytest.raises(SnapshotError, match="corrupt|digest"):
            Snapshot.from_bytes(bytes(data))

    def test_truncated_file_is_rejected(self):
        data = Snapshot({"v": 1}, {"series": list(range(64))}).to_bytes()
        with pytest.raises(SnapshotError, match="truncated|corrupt"):
            Snapshot.from_bytes(data[: len(data) // 2])

    def test_truncation_inside_header_is_rejected(self):
        # Magic survives but the schema/lengths do not: every prefix must
        # fail as a SnapshotError, never a raw struct.error.
        data = Snapshot({"v": 1}, {"x": 1}).to_bytes()
        for cut in (6, 7, 9, 12):
            with pytest.raises(SnapshotError, match="truncated|corrupt"):
                Snapshot.from_bytes(data[:cut])

    def test_stale_repro_version_is_refused(self):
        snap = Snapshot({"repro_version": "0.0.1", "format": "graph"}, {})
        with pytest.raises(SnapshotError) as exc:
            snap.require_version()
        assert "0.0.1" in str(exc.value) and __version__ in str(exc.value)

    def test_save_load_round_trip(self, tmp_path):
        snap = Snapshot({"repro_version": __version__}, {"x": 5})
        path = snap.save(tmp_path / "a.snap")
        loaded = Snapshot.load(path)
        assert loaded.body == {"x": 5}
        assert loaded.state_hash == snap.state_hash

    def test_load_missing_file_is_actionable(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            Snapshot.load(tmp_path / "nope.snap")


# ----------------------------------------------------------------------
# Bare-simulator mid-flight capture (numpy-free)
# ----------------------------------------------------------------------
def _sim_with_recorder(config: ChipConfig):
    sim = Simulator(config)
    executed = []

    def executor(cell, msg):
        executed.append((sim.cycle, cell.cc_id, msg.action, msg.operands))
        # Operand-dependent cost exercises parking and the wake wheel.
        return (1 + msg.operands[0] % 7, [])

    sim.set_executor(executor)
    return sim, executed


def _inject_wave(sim: Simulator, count: int) -> None:
    n = sim.config.num_cells
    for i in range(count):
        sim.inject_message(
            Message(src=(i * 3) % n, dst=(i * 11 + 5) % n, action="noop",
                    operands=(i,)))


@pytest.mark.parametrize("fidelity", ["cycle", "latency", "cycle-ref"])
def test_mid_flight_simulator_round_trip(fidelity):
    """Capture with messages in flight; the restored schedule is identical."""
    config = ChipConfig(width=8, height=8, fidelity=fidelity, kernel="python")
    sim, executed = _sim_with_recorder(config)
    _inject_wave(sim, 40)
    sim.run(max_cycles=6)  # mid-flight: deliveries, parked cells, queues
    snap = capture_simulator(sim)
    prefix = len(executed)
    sim.run()  # finish the uninterrupted run
    tail = executed[prefix:]
    stats_full = sim.finalize().summary()

    restored = restore_simulator(config, snap)
    executed2 = []

    def executor(cell, msg):
        executed2.append((restored.cycle, cell.cc_id, msg.action, msg.operands))
        return (1 + msg.operands[0] % 7, [])

    restored.set_executor(executor)
    restored.run()
    assert executed2 == tail
    assert restored.finalize().summary() == stats_full


@requires_numpy
def test_mid_flight_round_trip_under_vector_mode():
    """The numpy kernel converts back to python state for capture."""
    from repro.arch.kernels import NumpyCycleAccurateNoC

    config = ChipConfig(width=8, height=8, fidelity="cycle", kernel="numpy")
    sim, executed = _sim_with_recorder(config)
    assert isinstance(sim.noc, NumpyCycleAccurateNoC)
    sim.noc._enter_at = 4  # force vector mode on tiny sweeps
    _inject_wave(sim, 60)
    sim.run(max_cycles=5)
    assert sim.noc._vector_mode  # the capture must survive vector state
    snap = capture_simulator(sim)
    prefix = len(executed)
    sim.run()
    tail = executed[prefix:]

    restored = restore_simulator(config, snap)
    executed2 = []

    def executor(cell, msg):
        executed2.append((restored.cycle, cell.cc_id, msg.action, msg.operands))
        return (1 + msg.operands[0] % 7, [])

    restored.set_executor(executor)
    restored.run()
    assert executed2 == tail


def test_bare_capture_refuses_resident_memory():
    config = ChipConfig(width=4, height=4, kernel="python")
    sim = Simulator(config)
    sim.set_executor(lambda cell, msg: (1, []))
    sim.cell(0).allocate(object())
    with pytest.raises(SnapshotError, match="resident object"):
        capture_simulator(sim)


def test_capture_refuses_task_closures_in_queues():
    from repro.arch.cell import Task

    config = ChipConfig(width=4, height=4, kernel="python")
    sim = Simulator(config)
    sim.set_executor(lambda cell, msg: (1, []))
    sim.enqueue_task(0, Task(lambda: (1, []), label="closure"))
    with pytest.raises(SnapshotError, match="Task"):
        capture_simulator(sim)


def test_capture_refuses_tracing():
    config = ChipConfig(width=4, height=4, kernel="python")
    sim = Simulator(config, trace_every=1)
    sim.set_executor(lambda cell, msg: (1, []))
    with pytest.raises(SnapshotError, match="tracing"):
        capture_simulator(sim)


def test_pending_ghost_future_refuses_capture():
    block = VertexBlock(vid=0, capacity=2, ghost_slots=1)
    block.ghosts[0].set_pending()
    with pytest.raises(SnapshotError, match="pending ghost allocation"):
        block.to_state()


# ----------------------------------------------------------------------
# Graph-level round trips (the subsystem's acceptance invariant)
# ----------------------------------------------------------------------
kernels = ["python"] + (["numpy"] if HAVE_NUMPY else [])


@requires_numpy
class TestEveryBoundary:
    @pytest.mark.parametrize("kernel", kernels)
    def test_restore_at_every_boundary_matches_uninterrupted(self, kernel):
        scenario = tiny_scenario()
        serial = run_scenario(scenario, kernel=kernel)
        total = scenario.dataset.num_increments
        for boundary in range(1, total + 1):
            snap = snapshot_at(scenario, boundary, kernel=kernel)
            # Round-trip through bytes: what the spill dir / CLI would see.
            resumed = resume_scenario(
                scenario, Snapshot.from_bytes(snap.to_bytes()), kernel=kernel)
            assert json.dumps(resumed, sort_keys=True) == \
                json.dumps(serial, sort_keys=True), f"boundary {boundary}"

    def test_state_hash_equality_and_inequality(self):
        scenario = tiny_scenario()
        a = snapshot_at(scenario, 3)
        b = snapshot_at(scenario, 3)
        c = snapshot_at(scenario, 4)
        assert a.state_hash == b.state_hash
        assert a.state_hash != c.state_hash

    def test_resumed_end_state_hashes_equal_uninterrupted(self):
        scenario = tiny_scenario()
        snap = snapshot_at(scenario, 2)
        dataset, device, graph, algorithm = restore_scenario(scenario, snap)
        for i in range(graph.increments_streamed, len(dataset.increments)):
            graph.stream_increment(dataset.increments[i],
                                   phase=f"increment-{i + 1}")
        resumed_end = capture(graph)
        uninterrupted_end = snapshot_at(scenario,
                                        scenario.dataset.num_increments)
        assert resumed_end.state_hash == uninterrupted_end.state_hash


@requires_numpy
class TestRestoreGuards:
    def test_wrong_scenario_is_refused(self):
        snap = snapshot_at(tiny_scenario(), 2)
        other = tiny_scenario(algorithm="ingest")
        with pytest.raises(SnapshotError, match="not from"):
            restore_scenario(other, snap)

    def test_chip_mismatch_is_refused(self):
        snap = snapshot_at(tiny_scenario(), 2)
        snap.meta.pop("spec_hash")  # defeat the early hash check so the
        snap.meta.pop("scenario")   # chip-level check is what fires
        other = tiny_scenario(chip=ChipSpec(side=16, edge_list_capacity=4))
        with pytest.raises(SnapshotError, match="chip spec mismatch"):
            restore_scenario(other, snap)

    def test_stale_version_is_refused_end_to_end(self):
        snap = snapshot_at(tiny_scenario(), 2)
        meta = dict(snap.meta)
        meta["repro_version"] = "0.0.1"
        meta.pop("spec_hash")  # hash embeds the version; isolate the check
        stale = Snapshot(meta, snap.body)
        with pytest.raises(SnapshotError, match="0.0.1"):
            restore_scenario(tiny_scenario(), stale)

    def test_restore_target_must_be_fresh(self):
        scenario = tiny_scenario()
        snap = snapshot_at(scenario, 2)
        dataset, device, graph, algorithm = restore_scenario(scenario, snap)
        graph.stream_increment(dataset.increments[2], phase="increment-3")
        from repro.snapshot import restore_into

        with pytest.raises(SnapshotError, match="freshly built"):
            restore_into(graph, snap)


# ----------------------------------------------------------------------
# snapshot_every: resumable long runs
# ----------------------------------------------------------------------
@requires_numpy
def test_snapshot_every_checkpoints_are_resumable(tmp_path):
    from dataclasses import replace

    scenario = tiny_scenario()
    checkpointed = scenario.with_(options=replace(
        scenario.options, snapshot_every=2, snapshot_dir=str(tmp_path)))
    # Identity-free: the spec hash must not move when checkpointing is on.
    assert checkpointed.spec_hash() == scenario.spec_hash()
    serial = run_scenario(checkpointed)
    files = sorted(p.name for p in tmp_path.iterdir())
    assert files == [f"snap-tiny-inc{i:04d}.snap" for i in (2, 4, 6)]
    resumed = resume_scenario(scenario, Snapshot.load(tmp_path / files[1]))
    assert json.dumps(resumed, sort_keys=True) == \
        json.dumps(serial, sort_keys=True)


@requires_numpy
@pytest.mark.parametrize("pipeline", [False, True])
def test_snapshot_every_survives_increment_sharding(tmp_path, pipeline):
    """The checkpoint cadence must not be lost when runs are sharded
    (snapshot_every/_dir are spec-stripped, so they ride alongside)."""
    from dataclasses import replace

    from repro.harness.runner import run_scenario_sharded

    scenario = tiny_scenario()
    serial = run_scenario(scenario)
    checkpointed = scenario.with_(options=replace(
        scenario.options, snapshot_every=2, snapshot_dir=str(tmp_path)))
    record = run_scenario_sharded(checkpointed, 3, pipeline=pipeline)
    assert json.dumps(record, sort_keys=True) == \
        json.dumps(serial, sort_keys=True)
    names = {p.name for p in tmp_path.iterdir()}
    assert {f"snap-tiny-inc{i:04d}.snap" for i in (2, 4, 6)} <= names
    resumed = resume_scenario(
        scenario, Snapshot.load(tmp_path / "snap-tiny-inc0004.snap"))
    assert json.dumps(resumed, sort_keys=True) == \
        json.dumps(serial, sort_keys=True)
