"""Tests for vertex placement and ghost allocation policies."""

import pytest

from repro.arch.config import ChipConfig
from repro.graph.allocator import (
    RandomAllocator,
    VertexPlacement,
    VicinityAllocator,
    make_ghost_allocator,
)


@pytest.fixture
def config():
    return ChipConfig(width=8, height=8)


class TestVertexPlacement:
    def test_unknown_policy_rejected(self, config):
        with pytest.raises(ValueError):
            VertexPlacement(config, "spiral")

    def test_round_robin_spreads_evenly(self, config):
        cells = VertexPlacement(config, "round_robin").place(128)
        counts = {c: cells.count(c) for c in set(cells)}
        assert set(counts.values()) == {2}

    def test_blocked_is_contiguous(self, config):
        cells = VertexPlacement(config, "blocked").place(128)
        assert cells == sorted(cells)
        assert all(0 <= c < config.num_cells for c in cells)

    def test_random_is_seed_reproducible(self, config):
        a = VertexPlacement(config, "random", seed=5).place(50)
        b = VertexPlacement(config, "random", seed=5).place(50)
        c = VertexPlacement(config, "random", seed=6).place(50)
        assert a == b
        assert a != c

    def test_hashed_is_deterministic(self, config):
        a = VertexPlacement(config, "hashed").place(50)
        b = VertexPlacement(config, "hashed", seed=99).place(50)
        assert a == b

    def test_all_policies_stay_in_range(self, config):
        for policy in VertexPlacement.POLICIES:
            cells = VertexPlacement(config, policy, seed=1).place(200)
            assert all(0 <= c < config.num_cells for c in cells)
            assert len(cells) == 200


class TestVicinityAllocator:
    def test_choices_within_max_hops(self, config):
        alloc = VicinityAllocator(config, max_hops=2, seed=1)
        origin = config.cc_at(4, 4)
        for _ in range(50):
            chosen = alloc.choose(origin)
            assert 1 <= config.manhattan(origin, chosen) <= 2

    def test_corner_origin_still_works(self, config):
        alloc = VicinityAllocator(config, max_hops=2, seed=1)
        origin = config.cc_at(0, 0)
        for _ in range(20):
            assert config.manhattan(origin, alloc.choose(origin)) <= 2

    def test_mean_distance_small(self, config):
        alloc = VicinityAllocator(config, max_hops=2, seed=1)
        for _ in range(100):
            alloc.choose(config.cc_at(3, 3))
        assert 0 < alloc.mean_distance() <= 2

    def test_invalid_max_hops(self, config):
        with pytest.raises(ValueError):
            VicinityAllocator(config, max_hops=0)

    def test_placed_counts_recorded(self, config):
        alloc = VicinityAllocator(config, seed=1)
        for _ in range(10):
            alloc.choose(0)
        assert sum(alloc.placed.values()) == 10


class TestRandomAllocator:
    def test_spreads_over_whole_chip(self, config):
        alloc = RandomAllocator(config, seed=2)
        chosen = {alloc.choose(0) for _ in range(300)}
        assert len(chosen) > config.num_cells // 2

    def test_mean_distance_larger_than_vicinity(self, config):
        vicinity = VicinityAllocator(config, max_hops=2, seed=3)
        rand = RandomAllocator(config, seed=3)
        origin = config.cc_at(4, 4)
        for _ in range(200):
            vicinity.choose(origin)
            rand.choose(origin)
        assert rand.mean_distance() > vicinity.mean_distance()

    def test_seed_reproducible(self, config):
        a = [RandomAllocator(config, seed=9).choose(0) for _ in range(5)]
        b = [RandomAllocator(config, seed=9).choose(0) for _ in range(5)]
        assert a[0] == b[0]


class TestFactory:
    def test_make_by_name(self, config):
        assert isinstance(make_ghost_allocator("vicinity", config), VicinityAllocator)
        assert isinstance(make_ghost_allocator("random", config), RandomAllocator)

    def test_unknown_name(self, config):
        with pytest.raises(ValueError):
            make_ghost_allocator("teleport", config)

    def test_kwargs_forwarded(self, config):
        alloc = make_ghost_allocator("vicinity", config, max_hops=3)
        assert alloc.max_hops == 3
