"""Tests for the continuation (call/cc) machinery and termination detection."""

import pytest

from repro.arch.address import Address
from repro.arch.config import ChipConfig
from repro.runtime.continuations import SYS_ALLOCATE, SYS_CONTINUATION
from repro.runtime.device import AMCCADevice
from repro.runtime.terminator import TerminationError, Terminator


class TestContinuationAllocation:
    """The four-step asynchronous allocation of Figure 3."""

    def _run_allocation(self, origin_cc=0, destination_cc=15):
        device = AMCCADevice(ChipConfig(width=4, height=4))
        observed = {}

        def starter(ctx, _obj):
            ctx.call_cc_allocate(
                factory=lambda: {"kind": "ghost"},
                words=4,
                destination_cc=destination_cc,
                then=lambda c2, addr: observed.setdefault("address", addr),
            )

        device.register_action("starter", starter)
        device.send("starter", Address(origin_cc, -1))
        device.run(max_cycles=500)
        return device, observed

    def test_system_actions_registered(self):
        device = AMCCADevice(ChipConfig(width=4, height=4))
        assert SYS_ALLOCATE in device.registry
        assert SYS_CONTINUATION in device.registry

    def test_object_allocated_on_destination_cell(self):
        device, observed = self._run_allocation(destination_cc=15)
        addr = observed["address"]
        assert addr.cc_id == 15
        assert device.get_object(addr) == {"kind": "ghost"}

    def test_continuation_resumes_on_origin_cell(self):
        device, observed = self._run_allocation(origin_cc=0, destination_cc=15)
        # continuation table of the origin cell must be empty again
        assert device.simulator.cell(0).continuations == {}
        assert device.continuations.created == 1
        assert device.continuations.resumed == 1

    def test_allocation_to_same_cell_works(self):
        device, observed = self._run_allocation(origin_cc=5, destination_cc=5)
        assert observed["address"].cc_id == 5

    def test_multiple_concurrent_allocations(self):
        device = AMCCADevice(ChipConfig(width=4, height=4))
        results = []

        def starter(ctx, _obj, destination):
            ctx.call_cc_allocate(
                factory=lambda: destination,
                words=1,
                destination_cc=destination,
                then=lambda c2, addr: results.append((destination, addr.cc_id)),
            )

        device.register_action("starter", starter)
        for dst in (1, 7, 12):
            device.send("starter", Address(0, -1), dst)
        device.run(max_cycles=1000)
        assert sorted(results) == [(1, 1), (7, 7), (12, 12)]


class TestTerminator:
    def test_quiet_initially(self):
        term = Terminator()
        assert term.quiet
        assert not term.is_finished

    def test_sent_and_completed_balance(self):
        term = Terminator()
        term.on_sent(3)
        assert not term.quiet
        term.on_completed(2)
        assert not term.quiet
        term.on_completed(1)
        assert term.quiet
        assert term.total_sent == 3 and term.total_completed == 3

    def test_negative_count_raises(self):
        term = Terminator()
        with pytest.raises(TerminationError):
            term.on_completed()

    def test_mark_finished_once(self):
        term = Terminator()
        term.mark_finished(100)
        term.mark_finished(200)
        assert term.finished_cycle == 100
        assert term.is_finished

    def test_reset_rearms(self):
        term = Terminator()
        term.on_sent()
        term.on_completed()
        term.mark_finished(5)
        term.reset()
        assert not term.is_finished

    def test_reset_with_outstanding_work_raises(self):
        term = Terminator()
        term.on_sent()
        with pytest.raises(TerminationError):
            term.reset()

    def test_device_run_marks_terminator_finished(self):
        device = AMCCADevice(ChipConfig(width=4, height=4))
        device.register_action("noop", lambda ctx, obj: None)
        term = Terminator("t")
        device.send("noop", Address(9, -1))
        device.run(terminator=term, max_cycles=200)
        assert term.is_finished
        assert term.quiet
        assert term.total_sent >= 1
