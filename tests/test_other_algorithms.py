"""Correctness tests for SSSP, connected components, triangles, Jaccard, PageRank."""

import pytest

from repro.algorithms import (
    JaccardCoefficient,
    PageRankDelta,
    StreamingConnectedComponents,
    StreamingSSSP,
    TriangleCounting,
)
from repro.arch.config import ChipConfig
from repro.baselines.networkx_ref import build_networkx
from repro.datasets.sbm import symmetrize
from repro.graph.graph import DynamicGraph
from repro.graph.rpvo import Edge
from repro.runtime.device import AMCCADevice

from helpers import requires_numpy, random_edges


def make_graph(num_vertices, algorithm, capacity=4, chip=None, seed=2):
    chip = chip or ChipConfig.small(edge_list_capacity=capacity)
    device = AMCCADevice(chip)
    graph = DynamicGraph(device, num_vertices, seed=seed)
    graph.attach(algorithm)
    return device, graph


class TestStreamingSSSP:
    @pytest.mark.parametrize("seed", [1, 2])
    def test_matches_dijkstra(self, seed):
        num_vertices = 40
        edges = random_edges(num_vertices, 250, seed=seed, weights=True)
        sssp = StreamingSSSP(root=0)
        _, graph = make_graph(num_vertices, sssp, seed=seed)
        sssp.seed(graph, root=0)
        graph.stream_increment(edges)
        expected = sssp.reference(build_networkx(edges, num_vertices), root=0)
        assert sssp.results(graph) == expected

    def test_incremental_shortcut_lowers_distance(self):
        sssp = StreamingSSSP(root=0)
        _, graph = make_graph(6, sssp)
        sssp.seed(graph, root=0)
        graph.stream_increment([Edge(0, 1, 5), Edge(1, 2, 5)])
        assert sssp.results(graph)[2] == 10
        graph.stream_increment([Edge(0, 2, 3)])
        assert sssp.results(graph)[2] == 3

    def test_weights_respected_over_hop_count(self):
        sssp = StreamingSSSP(root=0)
        _, graph = make_graph(4, sssp)
        sssp.seed(graph, root=0)
        # Direct edge is heavy, two-hop path is lighter.
        graph.stream_increment([Edge(0, 3, 10), Edge(0, 1, 2), Edge(1, 3, 2)])
        assert sssp.results(graph)[3] == 4

    def test_seed_requires_root(self):
        sssp = StreamingSSSP()
        _, graph = make_graph(4, sssp)
        with pytest.raises(ValueError):
            sssp.seed(graph)


class TestStreamingConnectedComponents:
    @pytest.mark.parametrize("seed", [3, 4])
    def test_matches_networkx_on_symmetrized_graph(self, seed):
        num_vertices = 40
        edges = symmetrize(random_edges(num_vertices, 80, seed=seed))
        cc = StreamingConnectedComponents()
        _, graph = make_graph(num_vertices, cc, seed=seed)
        graph.stream_increment(edges)
        expected = cc.reference(build_networkx(edges, num_vertices))
        assert cc.results(graph) == expected

    def test_isolated_vertices_keep_own_label(self):
        cc = StreamingConnectedComponents()
        _, graph = make_graph(5, cc)
        graph.stream_increment(symmetrize([Edge(0, 1)]))
        results = cc.results(graph)
        assert results[0] == results[1] == 0
        assert results[2] == 2 and results[3] == 3 and results[4] == 4

    def test_components_merge_across_increments(self):
        cc = StreamingConnectedComponents()
        _, graph = make_graph(6, cc)
        graph.stream_increment(symmetrize([Edge(0, 1), Edge(2, 3)]))
        first = cc.results(graph)
        assert first[3] == 2 and first[1] == 0
        graph.stream_increment(symmetrize([Edge(1, 2)]))
        second = cc.results(graph)
        assert second[0] == second[1] == second[2] == second[3] == 0


class TestTriangleCounting:
    @pytest.mark.parametrize("seed", [5, 6])
    def test_total_matches_networkx(self, seed):
        num_vertices = 30
        edges = symmetrize(random_edges(num_vertices, 120, seed=seed))
        tc = TriangleCounting()
        _, graph = make_graph(num_vertices, tc, seed=seed)
        graph.stream_increment(edges)
        tc.run(graph)
        expected = tc.reference(build_networkx(edges, num_vertices))
        assert tc.results(graph)["total"] == expected["total"]

    def test_known_triangle(self):
        tc = TriangleCounting()
        _, graph = make_graph(4, tc)
        graph.stream_increment(symmetrize([Edge(0, 1), Edge(1, 2), Edge(0, 2)]))
        tc.run(graph)
        assert tc.results(graph)["total"] == 1

    def test_no_triangles_in_a_star(self):
        tc = TriangleCounting()
        _, graph = make_graph(6, tc)
        graph.stream_increment(symmetrize([Edge(0, v) for v in range(1, 6)]))
        tc.run(graph)
        assert tc.results(graph)["total"] == 0


class TestJaccard:
    def test_matches_networkx(self):
        num_vertices = 25
        edges = symmetrize(random_edges(num_vertices, 90, seed=7))
        jc = JaccardCoefficient()
        _, graph = make_graph(num_vertices, jc, seed=7)
        graph.stream_increment(edges)
        jc.run(graph)
        got = jc.results(graph)
        expected = jc.reference(build_networkx(edges, num_vertices))
        assert set(got) == set(expected)
        for key, value in expected.items():
            assert got[key] == pytest.approx(value)

    def test_known_values(self):
        jc = JaccardCoefficient()
        _, graph = make_graph(4, jc)
        # Path 0-1-2: N(0)={1}, N(2)={1} share everything except each other.
        graph.stream_increment(symmetrize([Edge(0, 1), Edge(1, 2)]))
        jc.run(graph)
        got = jc.results(graph)
        assert got[(0, 1)] == pytest.approx(0.0)  # N(0)={1}, N(1)={0,2}: disjoint
        assert (1, 2) in got


class TestPageRankDelta:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PageRankDelta(damping=1.5)
        with pytest.raises(ValueError):
            PageRankDelta(epsilon=0)

    def test_ranks_sum_to_one(self):
        num_vertices = 30
        edges = symmetrize(random_edges(num_vertices, 120, seed=8))
        pr = PageRankDelta(epsilon=1e-4)
        _, graph = make_graph(num_vertices, pr, seed=8)
        graph.stream_increment(edges)
        pr.run(graph)
        ranks = pr.results(graph)
        assert sum(ranks.values()) == pytest.approx(1.0)
        assert all(r >= 0 for r in ranks.values())

    @requires_numpy
    def test_rank_ordering_tracks_networkx(self):
        """The highest-ranked vertices should broadly agree with NetworkX."""
        num_vertices = 40
        edges = symmetrize(random_edges(num_vertices, 200, seed=9))
        pr = PageRankDelta(epsilon=1e-5)
        _, graph = make_graph(num_vertices, pr, seed=9)
        graph.stream_increment(edges)
        pr.run(graph)
        ours = pr.results(graph)
        reference = pr.reference(build_networkx(edges, num_vertices))
        top_ours = set(sorted(ours, key=ours.get, reverse=True)[:5])
        top_ref = set(sorted(reference, key=reference.get, reverse=True)[:5])
        assert len(top_ours & top_ref) >= 3

    def test_hub_outranks_leaf(self):
        pr = PageRankDelta(epsilon=1e-5)
        _, graph = make_graph(6, pr)
        # Every vertex points at vertex 0.
        graph.stream_increment([Edge(v, 0) for v in range(1, 6)])
        pr.run(graph)
        ranks = pr.results(graph)
        assert ranks[0] == max(ranks.values())
