"""Satellites around the snapshot PR: ported benchmark suites, report
sections (ablation / baselines / PNG export), baseline refresh tooling and
the snapshot CLI verbs."""

from __future__ import annotations

import json

import pytest

from helpers import requires_numpy

from repro import __version__
from repro.harness import get_suite, update_baseline
from repro.harness.bench import BENCH_SCHEMA, load_bench
from repro.harness.report import (
    ablation_rows_from_records,
    allocator_rows_from_records,
    baseline_rows_from_records,
    export_png_figures,
    render_suite_report,
)


# ----------------------------------------------------------------------
# Ported benchmark suites
# ----------------------------------------------------------------------
class TestPortedSuites:
    def test_ablations_suite_registered(self):
        scenarios = get_suite("ablations")
        names = [s.name for s in scenarios]
        assert names == [
            "ablation-allocator-vicinity", "ablation-allocator-random",
            "ablation-routing-yx", "ablation-routing-xy",
            "ablation-fidelity-cycle", "ablation-fidelity-latency",
        ]
        # One knob moves per scenario; everything else stays the paper's.
        by_name = dict(zip(names, scenarios))
        assert by_name["ablation-allocator-random"].options.ghost_allocator == "random"
        assert by_name["ablation-routing-xy"].chip.routing == "xy"
        assert by_name["ablation-fidelity-latency"].chip.fidelity == "latency"
        # Skewed workload: snowball sampling + small edge lists force ghosts.
        assert all(s.dataset.sampling == "snowball" for s in scenarios)
        assert all(s.chip.edge_list_capacity == 8 for s in scenarios)

    def test_baseline_comparison_suite_registered(self):
        scenarios = get_suite("baseline-comparison")
        assert [s.algorithm for s in scenarios] == ["ingest", "bfs"]
        assert all(s.name.startswith("baseline-") for s in scenarios)

    def test_suites_have_distinct_spec_hashes(self):
        hashes = [s.spec_hash()
                  for s in get_suite("ablations") + get_suite("baseline-comparison")
                  + get_suite("allocator-comparison")]
        assert len(set(hashes)) == len(hashes)

    def test_allocator_comparison_suite_registered(self):
        scenarios = get_suite("allocator-comparison")
        assert [s.name for s in scenarios] == [
            "allocator-comparison-vicinity", "allocator-comparison-random",
        ]
        assert [s.options.ghost_allocator for s in scenarios] == [
            "vicinity", "random"]
        # The examples/allocator_comparison.py workload: a skewed R-MAT
        # stream whose hub vertices overflow small edge lists into ghosts.
        for s in scenarios:
            assert s.dataset.generator == "rmat"
            assert s.dataset.vertices == 1024  # power of two (R-MAT scale 10)
            assert s.chip.edge_list_capacity == 8
            assert s.algorithm == "bfs"
        # The generator is identity: the rmat pin must survive the spec
        # round trip (unlike the default "sbm", which is omitted).
        spec = scenarios[0].spec_dict()
        assert spec["dataset"]["generator"] == "rmat"


# ----------------------------------------------------------------------
# Report sections
# ----------------------------------------------------------------------
def _fake_record(name, algorithm, *, dataset=None, chip=None, cycles=100,
                 increments=(40, 35, 25), allocator="vicinity",
                 ghost_distance=1.5, ghost_max_depth=2):
    dataset = dataset or {"vertices": 50, "edges": 200, "sampling": "edge",
                          "num_increments": len(increments),
                          "symmetric": False, "weighted": False, "seed": 7}
    chip = chip or {"side": 8, "fidelity": "cycle", "routing": "yx",
                    "edge_list_capacity": 8, "ghost_slots": 1,
                    "clock_ghz": 1.0}
    return {
        "spec_hash": f"hash-{name}",
        "name": name,
        "repro_version": __version__,
        "scenario": {"name": name, "dataset": dataset, "chip": chip,
                     "algorithm": algorithm,
                     "options": {"ghost_allocator": allocator,
                                 "placement": "round_robin", "root": 0,
                                 "max_cycles_per_increment": None}},
        "increment_sizes": [10] * len(increments),
        "increment_cycles": list(increments),
        "query_cycles": 0,
        "total_cycles": cycles,
        "energy": {"total_uj": 12.5, "time_us": 0.5},
        "stats": {"hops": 999, "mean_activation": 0.25,
                  "peak_activation": 0.5},
        "edges_stored": 200,
        "ghost_blocks": 3,
        "ghost_distance": ghost_distance,
        "ghost_max_depth": ghost_max_depth,
        "algo_metrics": {},
    }


class TestAblationSection:
    def test_rows_group_by_knob(self):
        records = [
            _fake_record("ablation-allocator-vicinity", "bfs", cycles=100),
            _fake_record("ablation-allocator-random", "bfs", cycles=130),
            _fake_record("ablation-routing-xy", "bfs", cycles=105),
            _fake_record("unrelated-bfs", "bfs"),
        ]
        rows = ablation_rows_from_records(records)
        assert [(r["Knob"], r["Value"]) for r in rows] == [
            ("allocator", "random"), ("allocator", "vicinity"),
            ("routing", "xy"),
        ]
        assert all(r["Hops"] == 999 for r in rows)

    def test_section_renders_only_when_present(self):
        with_rows = render_suite_report(
            [_fake_record("ablation-routing-xy", "bfs")])
        assert "Ablation sweeps" in with_rows
        without = render_suite_report([_fake_record("plain-bfs", "bfs")])
        assert "Ablation sweeps" not in without


class TestAllocatorSection:
    def test_rows_read_ghost_metrics_from_records(self):
        records = [
            _fake_record("allocator-comparison-vicinity", "bfs", cycles=100,
                         allocator="vicinity", ghost_distance=1.2,
                         ghost_max_depth=3),
            _fake_record("allocator-comparison-random", "bfs", cycles=140,
                         allocator="random", ghost_distance=10.7,
                         ghost_max_depth=3),
            _fake_record("unrelated-bfs", "bfs"),
        ]
        rows = allocator_rows_from_records(records)
        assert [r["Allocator"] for r in rows] == ["random", "vicinity"]
        assert [r["Mean Distance"] for r in rows] == [10.7, 1.2]
        assert all(r["Ghost Blocks"] == 3 for r in rows)

    def test_rows_tolerate_records_predating_ghost_metrics(self):
        record = _fake_record("allocator-comparison-vicinity", "bfs")
        del record["ghost_distance"]
        del record["ghost_max_depth"]
        (row,) = allocator_rows_from_records([record])
        assert row["Mean Distance"] == "-"
        assert row["Max Depth"] == "-"

    def test_section_renders_only_when_present(self):
        with_rows = render_suite_report(
            [_fake_record("allocator-comparison-random", "bfs",
                          allocator="random")])
        assert "Ghost allocator comparison" in with_rows
        without = render_suite_report([_fake_record("plain-bfs", "bfs")])
        assert "Ghost allocator comparison" not in without


class TestRmatDatasets:
    def test_rmat_spec_requires_power_of_two_vertices(self):
        from repro.harness.scenario import DatasetSpec

        with pytest.raises(ValueError, match="power-of-two"):
            DatasetSpec(vertices=1000, edges=8000, generator="rmat")
        spec = DatasetSpec(vertices=64, edges=512, generator="rmat")
        assert spec.name == "rmat-64v-512e-edge"

    @requires_numpy
    def test_rmat_materialisation_is_deterministic(self):
        from repro.harness.runner import materialize_dataset
        from repro.harness.scenario import DatasetSpec

        spec = DatasetSpec(vertices=64, edges=512, num_increments=3,
                           generator="rmat", seed=3)
        a, b = materialize_dataset(spec), materialize_dataset(spec)
        assert a.increment_sizes() == b.increment_sizes()
        assert [list(c) for c in a.increments] == [list(c) for c in b.increments]
        # Self loops are dropped, so slightly fewer than `edges` stream.
        assert 0 < a.total_edges <= 512

    @requires_numpy
    def test_records_carry_ghost_placement_metrics(self):
        from repro.harness.runner import run_scenario
        from repro.harness.scenario import ChipSpec, DatasetSpec, Scenario

        record = run_scenario(Scenario(
            name="rmat-smoke",
            dataset=DatasetSpec(vertices=64, edges=512, num_increments=2,
                                generator="rmat", seed=3),
            chip=ChipSpec(side=8, edge_list_capacity=8),
            algorithm="bfs",
        ))
        assert record["ghost_blocks"] > 0
        assert record["ghost_distance"] > 0
        assert record["ghost_max_depth"] >= 1


class TestBaselineSection:
    @requires_numpy
    def test_rows_pair_records_and_add_bsp_estimates(self):
        records = [
            _fake_record("baseline-ingest", "ingest"),
            _fake_record("baseline-bfs", "bfs", increments=(60, 50, 40)),
        ]
        rows = baseline_rows_from_records(records)
        assert [r["Increment"] for r in rows] == [1, 2, 3]
        assert [r["Incremental BFS overhead"] for r in rows] == [20, 15, 15]
        assert all(r["BSP estimate"] > 0 for r in rows)
        assert all(r["BSP supersteps"] >= 1 for r in rows)

    def test_non_baseline_pairs_are_ignored(self):
        records = [
            _fake_record("other-ingest", "ingest"),
            _fake_record("other-bfs", "bfs"),
        ]
        assert baseline_rows_from_records(records) == []


class TestPngExport:
    def test_export_skips_cleanly_or_writes_files(self, tmp_path):
        from repro._compat import get_matplotlib

        records = [
            _fake_record("fig-ingest", "ingest"),
            _fake_record("fig-bfs", "bfs", increments=(60, 50, 40)),
        ]
        written = export_png_figures(records, tmp_path / "figs")
        if get_matplotlib() is None:
            assert written == []
        else:  # pragma: no cover - exercised where matplotlib is installed
            assert written
            assert all(p.suffix == ".png" and p.stat().st_size > 0
                       for p in written)


# ----------------------------------------------------------------------
# Baseline refresh tool
# ----------------------------------------------------------------------
class TestUpdateBaseline:
    def _ci_payload(self):
        return {
            "schema": BENCH_SCHEMA,
            "tag": "ci",
            "suite": "perf",
            "reps": 5,
            "repro_version": __version__,
            "workloads": [{"name": "w", "total_cycles": 10,
                           "median_cycles_per_sec": 1000.0}],
        }

    def test_promotes_artifact_and_retags(self, tmp_path):
        src = tmp_path / "BENCH_ci.json"
        src.write_text(json.dumps(self._ci_payload()))
        dest = tmp_path / "BENCH_baseline.json"
        update_baseline(src, dest)
        promoted = load_bench(dest)
        assert promoted["tag"] == "baseline"
        assert promoted["source_tag"] == "ci"
        assert promoted["workloads"] == self._ci_payload()["workloads"]

    def test_rejects_wrong_schema(self, tmp_path):
        src = tmp_path / "bad.json"
        payload = self._ci_payload()
        payload["schema"] = "something/else"
        src.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="unsupported bench schema"):
            update_baseline(src, tmp_path / "out.json")

    def test_rejects_empty_workloads(self, tmp_path):
        src = tmp_path / "empty.json"
        payload = self._ci_payload()
        payload["workloads"] = []
        src.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="no workloads"):
            update_baseline(src, tmp_path / "out.json")

    def test_cli_update_baseline(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "BENCH_ci.json"
        src.write_text(json.dumps(self._ci_payload()))
        dest = tmp_path / "BENCH_baseline.json"
        assert main(["bench", "--update-baseline", str(src),
                     "--baseline-out", str(dest)]) == 0
        assert "promoted" in capsys.readouterr().out
        assert load_bench(dest)["tag"] == "baseline"


# ----------------------------------------------------------------------
# Snapshot CLI verbs
# ----------------------------------------------------------------------
@requires_numpy
class TestSnapshotCli:
    def test_save_info_restore_verify_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        snap_path = tmp_path / "tiny.snap"
        assert main(["snapshot", "save", "--preset", "tiny",
                     "--scenario", "tiny-bfs", "--increment", "3",
                     "--out", str(snap_path)]) == 0
        assert snap_path.exists()
        assert main(["snapshot", "info", str(snap_path)]) == 0
        out = capsys.readouterr().out
        assert "increment: 3" in out and "state_hash" in out

        store = tmp_path / "resumed.jsonl"
        assert main(["snapshot", "restore", str(snap_path),
                     "--preset", "tiny", "--scenario", "tiny-bfs",
                     "--verify", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "byte-identical" in out
        record = json.loads(store.read_text().splitlines()[0])
        assert record["name"] == "tiny-bfs"

    def test_restore_wrong_scenario_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        snap_path = tmp_path / "tiny.snap"
        assert main(["snapshot", "save", "--preset", "tiny",
                     "--scenario", "tiny-ingest", "--increment", "2",
                     "--out", str(snap_path)]) == 0
        assert main(["snapshot", "restore", str(snap_path),
                     "--preset", "tiny", "--scenario", "tiny-bfs"]) == 2
        assert "not from" in capsys.readouterr().err

    def test_info_on_corrupt_file_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.snap"
        bad.write_bytes(b"not a snapshot at all")
        assert main(["snapshot", "info", str(bad)]) == 2
        assert "bad magic" in capsys.readouterr().err

    def test_save_out_of_range_boundary_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["snapshot", "save", "--preset", "tiny",
                     "--scenario", "tiny-bfs", "--increment", "99",
                     "--out", str(tmp_path / "x.snap")]) == 2
        assert "out of range" in capsys.readouterr().err
