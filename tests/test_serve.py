"""Tests for ``repro serve`` — the long-lived scenario service.

The load-bearing properties:

* records fetched over HTTP are **byte-identical** to a direct
  ``run_scenario`` encoded by the store (the determinism contract's HTTP
  half),
* pause → resume mid-stream merges to the **same record** as an
  uninterrupted run (the snapshot/pipeline-span transport),
* admission control is exact: with ``queue_depth=N``, ``N + k`` fresh
  concurrent submissions see exactly ``k`` 429s and the pool survives,
* ``/metrics`` exposes the service counters in Prometheus text format.

Everything runs against a real ``ThreadingHTTPServer`` on an ephemeral
port; scenarios are tiny (seconds end to end).
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.harness.runner import run_scenario
from repro.harness.scenario import ChipSpec, DatasetSpec, RunOptions, Scenario
from repro.harness.store import ResultStore
from repro.serve import FairQueue, Job, ScenarioService, ServeConfig, make_server

from helpers import requires_numpy


def tiny_scenario(name="serve-t", *, seed=3, increments=4, **dataset_kwargs):
    return Scenario(
        name=name,
        dataset=DatasetSpec(vertices=40, edges=200,
                            num_increments=increments,
                            sampling="snowball", seed=seed,
                            **dataset_kwargs),
        chip=ChipSpec(side=4),
        algorithm="bfs",
        options=RunOptions(),
    )


@pytest.fixture
def server(tmp_path):
    """A live service + HTTP server on an ephemeral port."""
    config = ServeConfig(port=0, jobs=1, queue_depth=2,
                        store=str(tmp_path / "store.jsonl"),
                        work_dir=str(tmp_path / "spill"))
    service = ScenarioService(config)
    httpd = make_server(service)
    service.start()
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    yield service, f"http://{host}:{port}"
    httpd.shutdown()
    httpd.server_close()
    service.stop()


def request(base, method, path, payload=None, headers=None, timeout=60):
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(base + path, data=data, method=method,
                                 headers=headers or {})
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def wait_state(base, job_id, states, tries=600):
    for _ in range(tries):
        _, body = request(base, "GET", f"/v1/jobs/{job_id}")
        status = json.loads(body)
        if status["state"] in states:
            return status
        threading.Event().wait(0.05)
    raise AssertionError(f"job never reached {states}: {status}")


class TestFairQueue:
    def test_round_robin_across_clients(self):
        queue = FairQueue()
        jobs = {}
        for client, seed in (("a", 1), ("a", 2), ("a", 3), ("b", 4),
                             ("c", 5)):
            job = Job(tiny_scenario(f"{client}{seed}", seed=seed), client)
            jobs[job.id] = client
            queue.push(job)
        order = [jobs[queue.pop(0).id] for _ in range(5)]
        # a submitted 3 before b and c submitted 1 each; fairness means b
        # and c are not starved behind a's backlog.
        assert order == ["a", "b", "c", "a", "a"]

    def test_pop_times_out_empty(self):
        queue = FairQueue()
        assert queue.pop(timeout=0.01) is None

    def test_close_wakes_blocked_pop(self):
        queue = FairQueue()
        out = []
        thread = threading.Thread(
            target=lambda: out.append(queue.pop(timeout=30)))
        thread.start()
        queue.close()
        thread.join(timeout=5)
        assert not thread.is_alive() and out == [None]


class TestHTTPByteIdentity:
    def test_record_over_http_matches_direct_run(self, server):
        service, base = server
        scenario = tiny_scenario("via-http")
        code, body = request(base, "POST", "/v1/jobs", scenario.spec_dict())
        assert code == 201
        job_id = json.loads(body)["id"]
        assert job_id == scenario.spec_hash()
        final = wait_state(base, job_id, ("done", "failed"))
        assert final["state"] == "done", final
        code, via_http = request(base, "GET", f"/v1/records/{job_id}")
        assert code == 200
        direct = (ResultStore.encode(run_scenario(scenario)) + "\n").encode()
        assert via_http == direct

    @requires_numpy
    def test_record_over_http_matches_direct_run_numpy_kernel(self, server):
        """Kernel pinning is identity-free: a numpy-kernel job produces
        the same id and byte-identical record as the python kernel."""
        service, base = server
        scenario = tiny_scenario("via-http-np")
        code, body = request(
            base, "POST", "/v1/jobs",
            {"scenario": scenario.spec_dict(), "kernel": "numpy"})
        assert code == 201
        job = json.loads(body)
        assert job["kernel"] == "numpy"
        assert job["id"] == scenario.spec_hash()
        final = wait_state(base, job["id"], ("done", "failed"))
        assert final["state"] == "done", final
        _, via_http = request(base, "GET", f"/v1/records/{job['id']}")
        direct = (ResultStore.encode(run_scenario(scenario)) + "\n").encode()
        assert via_http == direct

    def test_resubmit_is_cached(self, server):
        service, base = server
        scenario = tiny_scenario("cache-me")
        code, body = request(base, "POST", "/v1/jobs", scenario.spec_dict())
        assert code == 201
        job_id = json.loads(body)["id"]
        wait_state(base, job_id, ("done",))
        # Same spec again: no new work, same job, 200.
        code, body = request(base, "POST", "/v1/jobs", scenario.spec_dict())
        assert code == 200
        assert json.loads(body)["id"] == job_id

    def test_cached_submission_to_fresh_service(self, server, tmp_path):
        """A record landing in the store before the service saw the spec
        (e.g. a direct suite run) makes the first POST an immediate
        cache hit."""
        service, base = server
        scenario = tiny_scenario("pre-warmed")
        with service._store_lock:
            service.store.put(run_scenario(scenario))
        code, body = request(base, "POST", "/v1/jobs", scenario.spec_dict())
        assert code == 200
        job = json.loads(body)
        assert job["cached"] is True and job["state"] == "done"
        assert job["completed_increments"] == job["total_increments"]

    def test_invalid_spec_is_400(self, server):
        service, base = server
        code, body = request(base, "POST", "/v1/jobs", {"not": "a spec"})
        assert code == 400
        assert "invalid scenario spec" in json.loads(body)["error"]

    def test_missing_record_is_404(self, server):
        service, base = server
        code, _ = request(base, "GET", "/v1/records/deadbeef")
        assert code == 404


class TestPauseResume:
    def test_pause_resume_mid_stream_record_identical(self, server):
        service, base = server
        scenario = tiny_scenario("pausable", increments=6)
        code, body = request(base, "POST", "/v1/jobs", scenario.spec_dict())
        job_id = json.loads(body)["id"]
        code, body = request(base, "POST", f"/v1/jobs/{job_id}/pause")
        assert code == 202
        status = wait_state(base, job_id, ("paused", "done"))
        if status["state"] == "paused":
            # Parked strictly mid-stream (the pause raced ahead of
            # completion) — progress must be at an increment boundary.
            assert 0 <= status["completed_increments"] < 6
            code, _ = request(base, "POST", f"/v1/jobs/{job_id}/resume")
            assert code == 202
        final = wait_state(base, job_id, ("done", "failed"))
        assert final["state"] == "done", final
        _, via_http = request(base, "GET", f"/v1/records/{job_id}")
        direct = (ResultStore.encode(run_scenario(scenario)) + "\n").encode()
        assert via_http == direct

    def test_pause_terminal_job_conflicts(self, server):
        service, base = server
        scenario = tiny_scenario("already-done", increments=2)
        _, body = request(base, "POST", "/v1/jobs", scenario.spec_dict())
        job_id = json.loads(body)["id"]
        wait_state(base, job_id, ("done",))
        code, _ = request(base, "POST", f"/v1/jobs/{job_id}/pause")
        assert code == 409
        code, _ = request(base, "POST", f"/v1/jobs/{job_id}/resume")
        assert code == 409

    def test_resume_unpaused_job_conflicts(self, server):
        service, base = server
        scenario = tiny_scenario("not-paused", increments=6)
        _, body = request(base, "POST", "/v1/jobs", scenario.spec_dict())
        job_id = json.loads(body)["id"]
        code, _ = request(base, "POST", f"/v1/jobs/{job_id}/resume")
        assert code == 409
        wait_state(base, job_id, ("done",))

    def test_unknown_job_is_404(self, server):
        service, base = server
        for path in ("/v1/jobs/nope", "/v1/jobs/nope/pause",
                     "/v1/jobs/nope/events"):
            method = "POST" if path.endswith("pause") else "GET"
            code, _ = request(base, method, path)
            assert code == 404


class TestAdmissionControl:
    def test_exactly_k_rejections_beyond_depth(self, server):
        """queue_depth=2, 5 fresh concurrent submissions → exactly 3 429s,
        and the admitted jobs all complete (no pool crash)."""
        service, base = server
        outcomes = []
        lock = threading.Lock()

        def submit(i):
            code, body = request(
                base, "POST", "/v1/jobs",
                tiny_scenario(f"burst-{i}", seed=20 + i).spec_dict(),
                headers={"X-Repro-Client": f"tenant-{i}"})
            with lock:
                outcomes.append((code, body))

        threads = [threading.Thread(target=submit, args=(i,))
                   for i in range(5)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        codes = sorted(code for code, _ in outcomes)
        assert codes == [201, 201, 429, 429, 429]
        rejected = [json.loads(b) for c, b in outcomes if c == 429]
        assert all("admission" in r["error"] for r in rejected)
        # The two admitted jobs run to completion.
        for code, body in outcomes:
            if code == 201:
                final = wait_state(base, json.loads(body)["id"],
                                   ("done", "failed"))
                assert final["state"] == "done", final

    def test_slots_free_after_completion(self, server):
        service, base = server
        first = tiny_scenario("slot-1", seed=40)
        second = tiny_scenario("slot-2", seed=41)
        _, body = request(base, "POST", "/v1/jobs", first.spec_dict())
        wait_state(base, json.loads(body)["id"], ("done",))
        code, _ = request(base, "POST", "/v1/jobs", second.spec_dict())
        assert code == 201  # depth window reopened


class TestEventsAndViews:
    def test_long_poll_events(self, server):
        service, base = server
        scenario = tiny_scenario("eventful")
        _, body = request(base, "POST", "/v1/jobs", scenario.spec_dict())
        job_id = json.loads(body)["id"]
        wait_state(base, job_id, ("done",))
        code, body = request(base, "GET",
                             f"/v1/jobs/{job_id}/events?since=0&timeout=5")
        assert code == 200
        payload = json.loads(body)
        assert payload["done"] is True and payload["state"] == "done"
        assert any("admitted" in line for line in payload["events"])
        assert any(line.startswith("done:") for line in payload["events"])
        # Cursor-based: re-polling from `next` returns nothing new.
        code, body = request(
            base, "GET",
            f"/v1/jobs/{job_id}/events?since={payload['next']}&timeout=1")
        assert json.loads(body)["events"] == []

    def test_streamed_events(self, server):
        service, base = server
        scenario = tiny_scenario("streamed")
        _, body = request(base, "POST", "/v1/jobs", scenario.spec_dict())
        job_id = json.loads(body)["id"]
        code, body = request(base, "GET",
                             f"/v1/jobs/{job_id}/events?stream=1")
        assert code == 200
        lines = body.decode().splitlines()
        assert any("admitted" in line for line in lines)
        assert any(line.startswith("done:") for line in lines)

    def test_metrics_scrape(self, server):
        service, base = server
        scenario = tiny_scenario("metered")
        _, body = request(base, "POST", "/v1/jobs", scenario.spec_dict())
        wait_state(base, json.loads(body)["id"], ("done",))
        code, body = request(base, "GET", "/metrics")
        assert code == 200
        text = body.decode()
        assert "# TYPE serve_requests_total counter" in text
        assert 'serve_jobs_total{outcome="done"}' in text
        assert "serve_spans_total" in text
        assert "serve_queue_depth" in text

    def test_report_and_index_views(self, server):
        service, base = server
        scenario = tiny_scenario("reportable")
        _, body = request(base, "POST", "/v1/jobs", scenario.spec_dict())
        wait_state(base, json.loads(body)["id"], ("done",))
        code, body = request(base, "GET", "/v1/report")
        assert code == 200 and b"Suite results" in body
        code, body = request(base, "GET", "/v1/report?preset=suite,table1")
        assert code == 200 and b"Table 1 analogue" in body
        code, body = request(base, "GET", "/")
        assert code == 200 and b"reportable" in body
        code, body = request(base, "GET", "/v1/jobs")
        assert code == 200
        assert len(json.loads(body)["jobs"]) == 1

    def test_unknown_route_is_404(self, server):
        service, base = server
        code, _ = request(base, "GET", "/v2/nothing")
        assert code == 404
