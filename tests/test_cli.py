"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

from helpers import requires_numpy


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.scale == "tiny"

    def test_increments_arguments(self):
        args = build_parser().parse_args(
            ["increments", "--vertices", "100", "--edges", "800", "--sampling", "snowball"]
        )
        assert args.vertices == 100 and args.sampling == "snowball"

    def test_invalid_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--scale", "galactic"])


class TestAlgosList:
    def test_lists_every_registered_algorithm(self, capsys):
        from repro.algorithms.registry import algorithm_names

        assert main(["algos", "list"]) == 0
        out = capsys.readouterr().out
        for name in algorithm_names():
            assert name in out
        assert "symmetric-only" in out and "needs-root" in out

    def test_json_output_round_trips(self, capsys):
        import json

        from repro.algorithms.registry import algorithm_names

        assert main(["algos", "list", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert [e["name"] for e in entries] == list(algorithm_names())
        kcore = next(e for e in entries if e["name"] == "kcore")
        assert kcore["query"] and kcore["symmetric_only"]
        assert not kcore["supports_truncation"]
        assert kcore["class"] == "KCoreDecomposition"
        ingest = next(e for e in entries if e["name"] == "ingest")
        assert ingest["class"] is None


class TestCommands:
    @requires_numpy
    def test_table1(self, capsys):
        assert main(["table1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Sampling Type" in out and "Final Edges" in out

    @requires_numpy
    def test_quickstart(self, capsys):
        assert main(["quickstart"]) == 0
        out = capsys.readouterr().out
        assert "BFS reached" in out

    @requires_numpy
    def test_increments_small(self, capsys):
        code = main([
            "increments", "--vertices", "80", "--edges", "500",
            "--chip", "8", "--increments", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Streaming Edges with BFS" in out

    @requires_numpy
    def test_activation_small(self, capsys):
        code = main([
            "activation", "--vertices", "80", "--edges", "500",
            "--chip", "8", "--increments", "3", "--with-bfs",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "peak activation" in out

    @requires_numpy
    def test_table2_tiny(self, capsys):
        code = main(["table2", "--scale", "tiny", "--chip", "8", "--fidelity", "latency"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Ingestion & BFS Energy (uJ)" in out
