"""Tests for the congestion / load-imbalance analysis."""

import pytest

from repro.analysis.congestion import (
    CongestionReport,
    analyze_congestion,
    compare_sampling_congestion,
)
from repro.arch.config import ChipConfig
from repro.graph.graph import DynamicGraph
from repro.graph.rpvo import Edge
from repro.runtime.device import AMCCADevice

from helpers import random_edges

np = pytest.importorskip("numpy")  # these tests exercise numpy-backed features


def run_graph(edges, num_vertices=30, chip=None):
    chip = chip or ChipConfig.small(edge_list_capacity=8)
    device = AMCCADevice(chip)
    graph = DynamicGraph(device, num_vertices, seed=3)
    graph.stream_increment(edges)
    return device, graph


class TestCongestionReport:
    def test_report_totals_match_device(self):
        device, graph = run_graph(random_edges(30, 200, seed=1))
        report = analyze_congestion(device, graph)
        assert report.total_tasks == device.stats().tasks_executed
        assert report.per_cell_tasks.shape == (device.config.num_cells,)

    def test_hotspots_sorted_and_annotated(self):
        device, graph = run_graph(random_edges(30, 200, seed=2))
        report = analyze_congestion(device, graph, hotspot_count=3)
        assert len(report.hotspots) == 3
        loads = [h["tasks"] for h in report.hotspots]
        assert loads == sorted(loads, reverse=True)
        assert all("hosted_vertices" in h for h in report.hotspots)

    def test_hotspots_without_graph(self):
        device, _ = run_graph(random_edges(30, 100, seed=3))
        report = analyze_congestion(device, graph=None, hotspot_count=2)
        assert all("hosted_vertices" not in h for h in report.hotspots)

    def test_heatmap_dimensions(self):
        device, graph = run_graph(random_edges(30, 100, seed=4))
        report = analyze_congestion(device, graph)
        lines = report.heatmap().splitlines()
        assert len(lines) == device.config.height
        assert all(len(line) == device.config.width for line in lines)

    def test_summary_keys(self):
        device, graph = run_graph(random_edges(30, 100, seed=5))
        summary = analyze_congestion(device, graph).summary()
        assert {"total_tasks", "max_over_mean", "gini", "idle_cells"} <= set(summary)

    def test_gini_zero_for_balanced_load(self):
        cfg = ChipConfig(width=2, height=2)
        report = CongestionReport(
            per_cell_tasks=np.array([5, 5, 5, 5]),
            per_cell_instructions=np.zeros(4, dtype=int),
            per_cell_staged=np.zeros(4, dtype=int),
            config=cfg,
        )
        assert report.gini == pytest.approx(0.0)
        assert report.max_over_mean == pytest.approx(1.0)

    def test_gini_high_for_single_hotspot(self):
        cfg = ChipConfig(width=2, height=2)
        report = CongestionReport(
            per_cell_tasks=np.array([100, 0, 0, 0]),
            per_cell_instructions=np.zeros(4, dtype=int),
            per_cell_staged=np.zeros(4, dtype=int),
            config=cfg,
        )
        assert report.gini > 0.7
        assert report.max_over_mean == pytest.approx(4.0)

    def test_empty_run_is_all_zero(self):
        device = AMCCADevice(ChipConfig(width=2, height=2))
        report = analyze_congestion(device)
        assert report.total_tasks == 0
        assert report.gini == 0.0
        assert report.max_over_mean == 0.0


class TestSamplingComparison:
    def test_hub_stream_is_more_skewed_than_uniform_stream(self):
        """A stream hammering one vertex shows higher imbalance than a spread one."""
        uniform_dev, uniform_graph = run_graph(random_edges(30, 300, seed=6))
        hub_edges = [Edge(0, 1 + (i % 29)) for i in range(300)]
        hub_dev, hub_graph = run_graph(hub_edges)
        uniform = analyze_congestion(uniform_dev, uniform_graph)
        hub = analyze_congestion(hub_dev, hub_graph)
        comparison = compare_sampling_congestion(uniform, hub)
        assert comparison["snowball_more_skewed"] == 1.0
        assert hub.gini > uniform.gini
