"""Tests for the cycle-driven simulator: dispatch, quiescence, accounting."""

import pytest

from repro.arch.cell import Task
from repro.arch.config import ChipConfig
from repro.arch.message import Message
from repro.arch.simulator import Simulator


def echo_dispatcher(record):
    """A dispatcher that records delivered messages and does one cycle of work."""

    def dispatch(cell, msg):
        def run():
            record.append((cell.cc_id, msg.action, msg.operands))
            return 1, []
        return Task(run, label=msg.action)

    return dispatch


def make_sim(record=None, **overrides):
    cfg = ChipConfig(width=4, height=4, **overrides)
    sim = Simulator(cfg)
    sim.set_dispatcher(echo_dispatcher(record if record is not None else []))
    return cfg, sim


class TestDispatchAndDelivery:
    def test_requires_dispatcher(self):
        sim = Simulator(ChipConfig(width=2, height=2))
        with pytest.raises(RuntimeError):
            sim.step()

    def test_message_is_dispatched_at_destination(self):
        record = []
        cfg, sim = make_sim(record)
        msg = Message(src=0, dst=cfg.cc_at(3, 3), action="ping", operands=(42,))
        sim.inject_message(msg)
        sim.run(max_cycles=100)
        assert record == [(cfg.cc_at(3, 3), "ping", (42,))]

    def test_enqueue_task_directly(self):
        record = []
        cfg, sim = make_sim(record)
        done = []
        sim.enqueue_task(5, Task(lambda: (done.append(True) or (1, [])), label="x"))
        sim.run(max_cycles=10)
        assert done == [True]

    def test_quiescence_detected(self):
        record = []
        _, sim = make_sim(record)
        msg = Message(src=0, dst=10, action="ping")
        sim.inject_message(msg)
        cycles = sim.run(max_cycles=1000)
        assert sim.is_quiescent
        assert cycles < 1000

    def test_idle_chip_is_quiescent_immediately(self):
        _, sim = make_sim()
        assert sim.is_quiescent
        assert sim.run(max_cycles=5) <= 5

    def test_run_until_predicate(self):
        record = []
        _, sim = make_sim(record)
        for i in range(4):
            sim.inject_message(Message(src=0, dst=15, action="p", operands=(i,)))
        sim.run(until=lambda: len(record) >= 2, max_cycles=500)
        assert len(record) >= 2

    def test_max_cycles_budget_respected(self):
        record = []
        _, sim = make_sim(record)
        sim.inject_message(Message(src=0, dst=15, action="p"))
        ran = sim.run(max_cycles=2)
        assert ran == 2


class TestAccounting:
    def test_active_cells_recorded_per_cycle(self):
        record = []
        cfg, sim = make_sim(record)
        sim.inject_message(Message(src=0, dst=cfg.cc_at(1, 0), action="p"))
        sim.run(max_cycles=50)
        assert sim.stats.cycles > 0
        assert max(sim.stats.active_cells_per_cycle) >= 1

    def test_finalize_collects_cell_counters_idempotently(self):
        record = []
        _, sim = make_sim(record)
        sim.inject_message(Message(src=0, dst=9, action="p"))
        sim.run(max_cycles=100)
        first = sim.finalize().instructions
        second = sim.finalize().instructions
        assert first == second >= 1

    def test_energy_report_nonzero_after_work(self):
        record = []
        _, sim = make_sim(record)
        sim.inject_message(Message(src=0, dst=9, action="p"))
        sim.run(max_cycles=100)
        assert sim.energy_report().total_uj > 0

    def test_memory_occupancy(self):
        _, sim = make_sim()
        sim.cell(3).allocate("obj", words=7)
        occupancy = sim.memory_occupancy()
        assert occupancy[3] == 7
        assert occupancy[0] == 0

    def test_all_objects_iterates_memory(self):
        _, sim = make_sim()
        sim.cell(1).allocate("a")
        sim.cell(2).allocate("b")
        assert set(sim.all_objects()) == {"a", "b"}

    def test_cycle_hooks_run_every_cycle(self):
        record = []
        _, sim = make_sim(record)
        seen = []
        sim.add_cycle_hook(seen.append)
        sim.inject_message(Message(src=0, dst=5, action="p"))
        sim.run(max_cycles=20)
        assert seen == list(range(len(seen)))
        assert len(seen) == sim.cycle


class TestStagedPropagation:
    def test_task_propagated_message_travels(self):
        """A task that emits a message gets it staged, injected and delivered."""
        cfg = ChipConfig(width=4, height=4)
        sim = Simulator(cfg)
        arrived = []

        def dispatch(cell, msg):
            def run():
                if msg.action == "first":
                    out = Message(src=cell.cc_id, dst=cfg.cc_at(3, 3), action="second")
                    return 1, [out]
                arrived.append(cell.cc_id)
                return 1, []
            return Task(run, label=msg.action)

        sim.set_dispatcher(dispatch)
        sim.inject_message(Message(src=0, dst=cfg.cc_at(0, 3), action="first"))
        sim.run(max_cycles=200)
        assert arrived == [cfg.cc_at(3, 3)]
        assert sim.is_quiescent
