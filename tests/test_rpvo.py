"""Tests for the RPVO vertex block data structure."""

import pytest
from hypothesis import given, strategies as st

from repro.arch.address import Address, NULL_ADDRESS
from repro.graph.rpvo import Edge, EdgeSlot, INFINITY, VertexBlock


def slot(dst=1, vid=1, w=1):
    return EdgeSlot(dst_addr=Address(0, dst), dst_vid=vid, weight=w)


class TestEdge:
    def test_reversed(self):
        e = Edge(3, 7, weight=2)
        r = e.reversed()
        assert (r.src, r.dst, r.weight) == (7, 3, 2)

    def test_edges_are_hashable_and_frozen(self):
        assert len({Edge(0, 1), Edge(0, 1), Edge(1, 0)}) == 2
        with pytest.raises(Exception):
            Edge(0, 1).src = 5  # type: ignore[misc]


class TestAddress:
    def test_null_address(self):
        assert NULL_ADDRESS.is_null
        assert not Address(0, 0).is_null

    def test_ordering_and_hash(self):
        assert Address(0, 1) < Address(1, 0)
        assert len({Address(0, 1), Address(0, 1)}) == 1


class TestVertexBlock:
    def test_validation(self):
        with pytest.raises(ValueError):
            VertexBlock(0, capacity=0)
        with pytest.raises(ValueError):
            VertexBlock(0, capacity=2, ghost_slots=0)

    def test_has_room_until_capacity(self):
        block = VertexBlock(0, capacity=3)
        for i in range(3):
            assert block.has_room
            block.append_edge(slot(i, i))
        assert not block.has_room

    def test_append_beyond_capacity_raises(self):
        block = VertexBlock(0, capacity=1)
        block.append_edge(slot())
        with pytest.raises(OverflowError):
            block.append_edge(slot())

    def test_ghost_futures_start_null(self):
        block = VertexBlock(0, capacity=2, ghost_slots=3)
        assert len(block.ghosts) == 3
        assert all(f.is_null for f in block.ghosts)
        assert block.resolved_ghosts() == []

    def test_ghost_slot_for_is_deterministic_and_in_range(self):
        block = VertexBlock(0, capacity=2, ghost_slots=3)
        for vid in range(20):
            idx = block.ghost_slot_for(vid)
            assert 0 <= idx < 3
            assert idx == block.ghost_slot_for(vid)

    def test_state_snapshot_is_copied(self):
        state = {"level": 5}
        block = VertexBlock(0, capacity=2, state=state)
        state["level"] = 9
        assert block.get_state("level") == 5

    def test_state_helpers(self):
        block = VertexBlock(0, capacity=2)
        assert block.get_state("level", INFINITY) == INFINITY
        block.set_state("level", 3)
        assert block.get_state("level") == 3

    def test_words_scale_with_capacity(self):
        small = VertexBlock(0, capacity=4)
        big = VertexBlock(0, capacity=64)
        assert big.words() > small.words()

    def test_root_vs_ghost_flags(self):
        root = VertexBlock(1, capacity=2, is_root=True)
        ghost = VertexBlock(1, capacity=2, is_root=False, depth=2)
        assert root.is_root and root.depth == 0
        assert not ghost.is_root and ghost.depth == 2

    @given(st.integers(min_value=1, max_value=64), st.integers(min_value=0, max_value=64))
    def test_property_local_degree_never_exceeds_capacity(self, capacity, attempts):
        block = VertexBlock(0, capacity=capacity)
        inserted = 0
        for i in range(attempts):
            if block.has_room:
                block.append_edge(slot(i, i))
                inserted += 1
        assert block.degree_local == min(capacity, attempts) == inserted
