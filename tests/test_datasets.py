"""Tests for the dataset generators, sampling orders and file IO."""

import pytest

from hypothesis import given, strategies as st

from repro.datasets.io import (
    read_edge_list,
    read_streaming_dataset,
    write_edge_list,
    write_streaming_dataset,
)
from repro.datasets.rmat import generate_rmat
from repro.datasets.sampling import (
    edge_sampling_increments,
    increment_sizes,
    snowball_sampling_increments,
    split_even,
)
from repro.datasets.sbm import SBMParams, block_of, generate_sbm, generate_sbm_arrays, symmetrize
from repro.datasets.streaming import (
    SCALE_PRESETS,
    make_streaming_dataset,
    paper_dataset_configs,
)
from repro.graph.rpvo import Edge

np = pytest.importorskip("numpy")  # these tests exercise numpy-backed features


class TestSBMParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            SBMParams(num_vertices=1, num_edges=5)
        with pytest.raises(ValueError):
            SBMParams(num_vertices=10, num_edges=0)
        with pytest.raises(ValueError):
            SBMParams(num_vertices=10, num_edges=5, num_blocks=20)
        with pytest.raises(ValueError):
            SBMParams(num_vertices=10, num_edges=5, intra_prob=1.5)
        with pytest.raises(ValueError):
            SBMParams(num_vertices=10, num_edges=5, degree_exponent=1.0)

    def test_block_assignment_contiguous_and_complete(self):
        params = SBMParams(num_vertices=100, num_edges=10, num_blocks=7)
        blocks = block_of(params, np.arange(100))
        assert blocks.min() == 0 and blocks.max() == 6
        assert np.all(np.diff(blocks) >= 0)


class TestGenerateSBM:
    def test_edge_count_and_vertex_range(self):
        params = SBMParams(num_vertices=200, num_edges=1500, seed=1)
        edges = generate_sbm(params)
        assert len(edges) == 1500
        assert all(0 <= e.src < 200 and 0 <= e.dst < 200 for e in edges)

    def test_no_self_loops_by_default(self):
        edges = generate_sbm(SBMParams(num_vertices=100, num_edges=2000, seed=2))
        assert all(e.src != e.dst for e in edges)

    def test_seed_determinism(self):
        params = SBMParams(num_vertices=100, num_edges=500, seed=42)
        assert generate_sbm(params) == generate_sbm(params)

    def test_different_seeds_differ(self):
        a = generate_sbm(SBMParams(num_vertices=100, num_edges=500, seed=1))
        b = generate_sbm(SBMParams(num_vertices=100, num_edges=500, seed=2))
        assert a != b

    def test_community_structure_dominates(self):
        """With intra_prob=0.9, most edges stay inside their source's block."""
        params = SBMParams(num_vertices=400, num_edges=8000, num_blocks=8,
                           intra_prob=0.9, seed=3)
        srcs, dsts = generate_sbm_arrays(params)
        same = block_of(params, srcs) == block_of(params, dsts)
        assert same.mean() > 0.7

    def test_degree_skew(self):
        """Heavy-tailed propensities produce a skewed out-degree distribution."""
        params = SBMParams(num_vertices=500, num_edges=10_000, degree_exponent=1.8, seed=4)
        srcs, _ = generate_sbm_arrays(params)
        degrees = np.bincount(srcs, minlength=500)
        assert degrees.max() > 4 * degrees.mean()

    def test_symmetrize_doubles_edges(self):
        edges = [Edge(0, 1), Edge(2, 3)]
        sym = symmetrize(edges)
        assert len(sym) == 4
        assert Edge(1, 0) in sym and Edge(3, 2) in sym


class TestSplitEven:
    def test_lengths_sum(self):
        parts = split_even(list(range(23)), 5)
        assert sum(len(p) for p in parts) == 23
        assert len(parts) == 5
        assert max(len(p) for p in parts) - min(len(p) for p in parts) <= 1

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            split_even([1, 2], 0)

    @given(st.integers(min_value=0, max_value=200), st.integers(min_value=1, max_value=20))
    def test_property_partition(self, n, parts):
        items = list(range(n))
        chunks = split_even(items, parts)
        assert len(chunks) == parts
        flat = [x for chunk in chunks for x in chunk]
        assert flat == items


class TestSamplingOrders:
    def _edges(self, seed=0):
        return generate_sbm(SBMParams(num_vertices=150, num_edges=1200, seed=seed))

    def test_edge_sampling_is_a_permutation(self):
        edges = self._edges()
        increments = edge_sampling_increments(edges, 10, seed=1)
        assert sorted(map(repr, edges)) == sorted(
            repr(e) for chunk in increments for e in chunk
        )

    def test_edge_sampling_increments_are_even(self):
        sizes = increment_sizes(edge_sampling_increments(self._edges(), 10, seed=1))
        assert max(sizes) - min(sizes) <= 1

    def test_snowball_preserves_every_edge(self):
        edges = self._edges()
        increments = snowball_sampling_increments(edges, 150, 10, seed=1)
        assert sum(len(c) for c in increments) == len(edges)

    def test_snowball_increments_grow(self):
        """Later snowball increments carry more edges than early ones (Table 1 shape)."""
        edges = generate_sbm(SBMParams(num_vertices=600, num_edges=9000,
                                       num_blocks=20, seed=5))
        sizes = increment_sizes(snowball_sampling_increments(edges, 600, 10, seed=5))
        first_third = sum(sizes[:3])
        last_third = sum(sizes[-3:])
        assert last_third > 1.3 * first_third

    def test_snowball_determinism(self):
        edges = self._edges(seed=2)
        a = snowball_sampling_increments(edges, 150, 10, seed=9)
        b = snowball_sampling_increments(edges, 150, 10, seed=9)
        assert a == b

    def test_sampling_counts_of_increments(self):
        edges = self._edges()
        assert len(edge_sampling_increments(edges, 7, seed=0)) == 7
        assert len(snowball_sampling_increments(edges, 150, 7, seed=0)) == 7


class TestStreamingDataset:
    def test_make_dataset_totals(self):
        ds = make_streaming_dataset(200, 1800, sampling="edge", seed=3)
        assert ds.total_edges == 1800
        assert ds.num_increments == 10
        assert len(ds.all_edges()) == 1800

    def test_prefix_edges(self):
        ds = make_streaming_dataset(100, 900, sampling="edge", seed=3)
        assert len(ds.prefix_edges(3)) == sum(ds.increment_sizes()[:3])

    def test_summary_row_fields(self):
        ds = make_streaming_dataset(100, 900, sampling="snowball", seed=3)
        row = ds.summary_row()
        assert row["vertices"] == 100
        assert row["sampling"] == "snowball"
        assert len(row["increments"]) == 10

    def test_unknown_sampling_rejected(self):
        with pytest.raises(ValueError):
            make_streaming_dataset(100, 500, sampling="spiral")

    def test_symmetric_doubles_edges(self):
        ds = make_streaming_dataset(100, 500, symmetric=True, seed=1)
        assert ds.total_edges == 1000

    def test_paper_dataset_configs_scaled(self):
        datasets = paper_dataset_configs(scale="tiny", seed=1)
        assert len(datasets) == 4
        names = {d.name for d in datasets}
        assert any("50k" in n and "edge" in n for n in names)
        assert any("500k" in n and "snowball" in n for n in names)
        small, large = datasets[0], datasets[2]
        assert large.num_vertices == 10 * small.num_vertices

    def test_paper_dataset_configs_numeric_scale(self):
        datasets = paper_dataset_configs(scale=0.001, seed=1)
        assert datasets[0].num_vertices >= 64

    def test_scale_presets_exist(self):
        assert {"tiny", "small", "paper"} <= set(SCALE_PRESETS)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            paper_dataset_configs(scale=0.0)


class TestRMAT:
    def test_vertex_range_and_skew(self):
        edges = generate_rmat(scale=8, edge_factor=8, seed=1)
        assert all(0 <= e.src < 256 and 0 <= e.dst < 256 for e in edges)
        degrees = np.bincount([e.src for e in edges], minlength=256)
        assert degrees.max() > 5 * max(1.0, degrees.mean())

    def test_seed_determinism(self):
        assert generate_rmat(6, seed=3) == generate_rmat(6, seed=3)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_rmat(0)
        with pytest.raises(ValueError):
            generate_rmat(4, a=0.5, b=0.4, c=0.3)


class TestIO:
    def test_edge_list_roundtrip(self, tmp_path):
        edges = [Edge(0, 1, 3), Edge(2, 5, 1)]
        path = tmp_path / "edges.tsv"
        write_edge_list(path, edges)
        assert read_edge_list(path) == edges

    def test_edge_list_skips_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "edges.tsv"
        path.write_text("# header\n\n0\t1\n2\t3\t7\n")
        assert read_edge_list(path) == [Edge(0, 1, 1), Edge(2, 3, 7)]

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "edges.tsv"
        path.write_text("42\n")
        with pytest.raises(ValueError):
            read_edge_list(path)

    def test_streaming_dataset_roundtrip(self, tmp_path):
        ds = make_streaming_dataset(80, 400, sampling="snowball", seed=2)
        write_streaming_dataset(tmp_path / "ds", ds)
        loaded = read_streaming_dataset(tmp_path / "ds")
        assert loaded.name == ds.name
        assert loaded.num_vertices == ds.num_vertices
        assert loaded.sampling == ds.sampling
        assert loaded.increment_sizes() == ds.increment_sizes()
        assert loaded.all_edges() == ds.all_edges()
