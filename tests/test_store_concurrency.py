"""Concurrency tests for the result store's lifecycle operations.

The store's crash-safety contract is the atomic rewrite: every write path
(`put`, `put_many`, `compact`, `gc`) rebuilds the file in a temp sibling
and `os.replace`s it into place.  These tests exercise that contract under
concurrency — readers racing a compaction, writers racing each other
behind a lock (the `repro serve` arrangement), and rewrites that die
mid-replace via failure-injection hooks — and assert the on-disk store is
always either the old or the new contents, never a torn mix.
"""

import os
import threading

import pytest

from repro import __version__
from repro.harness.scenario import ChipSpec, DatasetSpec, Scenario
from repro.harness.store import ResultStore


def _record(name, version=__version__, *, cycles=100, seed=3):
    scenario = Scenario(
        name=name,
        dataset=DatasetSpec(vertices=20, edges=60, num_increments=2,
                            sampling="edge", seed=seed),
        chip=ChipSpec(side=4),
        algorithm="ingest",
    )
    return {
        "spec_hash": f"{name}-{version}",
        "name": name,
        "repro_version": version,
        "scenario": scenario.spec_dict(),
        "total_cycles": cycles,
        "energy": {"total_uj": 1.0, "time_us": 2.0},
    }


class TestReadersVsLifecycle:
    def test_fresh_readers_never_see_torn_store_during_compact(self, tmp_path):
        """Readers loading from disk mid-compact see old or new, never torn.

        One thread compacts/repopulates in a loop; reader threads
        continuously open fresh handles (a second process in miniature).
        A torn or partially-visible file would raise ValueError in _load
        or yield a record set that is neither pre- nor post-compact.
        """
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        stale = [_record("exp", "0.9.0", cycles=90),
                 _record("other", "0.9.0")]
        fresh = [_record("exp", cycles=100), _record("other")]
        store.put_many(stale + fresh)

        valid_sets = (
            {r["spec_hash"] for r in stale + fresh},  # before compact
            {r["spec_hash"] for r in fresh},          # after compact
        )
        errors = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                try:
                    seen = {r["spec_hash"] for r in ResultStore(path)}
                except ValueError as exc:  # torn file
                    errors.append(f"corrupt store: {exc}")
                    return
                if seen not in valid_sets:
                    errors.append(f"inconsistent record set: {seen}")
                    return

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()
        try:
            for _ in range(10):
                dropped = store.compact()
                assert {r["spec_hash"] for r in dropped} == {
                    "exp-0.9.0", "other-0.9.0"}
                store.put_many(stale)  # re-seed for the next round
        finally:
            stop.set()
            for thread in readers:
                thread.join()
        assert errors == []

    def test_fresh_readers_never_see_torn_store_during_gc(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.put_many([_record("old", "0.9.0"), _record("new")])
        errors = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                try:
                    ResultStore(path)
                except ValueError as exc:
                    errors.append(str(exc))
                    return

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()
        try:
            for _ in range(10):
                dropped = store.gc()
                assert [r["spec_hash"] for r in dropped] == ["old-0.9.0"]
                store.put(_record("old", "0.9.0"))
        finally:
            stop.set()
            for thread in readers:
                thread.join()
        assert errors == []


class TestConcurrentWriters:
    def test_locked_writers_lose_no_records(self, tmp_path):
        """N threads putting distinct records behind one lock (the
        ``repro serve`` arrangement: ResultStore is atomic against crashes,
        not against in-process races, so the service serialises puts)."""
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        lock = threading.Lock()

        def writer(i):
            for j in range(5):
                with lock:
                    store.put(_record(f"w{i}-{j}"))

        threads = [threading.Thread(target=writer, args=(i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(ResultStore(path)) == 20

    def test_separate_handles_merge_on_rewrite(self, tmp_path):
        """Two handles (processes in miniature) interleaving compactions
        and puts: _merge_disk folds the other writer's records in, so a
        compact on one handle never silently drops the other's inserts."""
        path = tmp_path / "store.jsonl"
        ours = ResultStore(path)
        ours.put_many([_record("exp", "0.9.0"), _record("exp")])
        theirs = ResultStore(path)
        theirs.put(_record("theirs"))
        # Our handle compacts without having seen "theirs": the rewrite
        # keeps it because compact's rewrite path goes through the same
        # in-memory set, which _merge_disk refreshed on our last put —
        # reload to pick it up explicitly, then compact.
        ours.put(_record("ours"))
        dropped = ours.compact()
        assert [r["spec_hash"] for r in dropped] == ["exp-0.9.0"]
        final = {r["spec_hash"] for r in ResultStore(path)}
        assert final == {f"exp-{__version__}", f"theirs-{__version__}",
                         f"ours-{__version__}"}


class TestFailureInjection:
    def test_compact_failed_replace_leaves_disk_intact(self, tmp_path,
                                                       monkeypatch):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.put_many([_record("exp", "0.9.0"), _record("exp")])
        before = path.read_bytes()

        def broken_replace(src, dst):
            raise OSError("disk detached mid-replace")

        monkeypatch.setattr(os, "replace", broken_replace)
        with pytest.raises(OSError):
            store.compact()
        monkeypatch.undo()
        assert path.read_bytes() == before
        assert list(tmp_path.glob("*.tmp")) == []
        # A fresh handle still serves the pre-compact contents and can
        # complete the compaction cleanly.
        recovered = ResultStore(path)
        assert len(recovered) == 2
        dropped = recovered.compact()
        assert [r["spec_hash"] for r in dropped] == ["exp-0.9.0"]

    def test_gc_failed_replace_leaves_disk_intact(self, tmp_path,
                                                  monkeypatch):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.put_many([_record("old", "0.9.0"), _record("new")])
        before = path.read_bytes()
        monkeypatch.setattr(
            os, "replace",
            lambda src, dst: (_ for _ in ()).throw(OSError("injected")))
        with pytest.raises(OSError):
            store.gc()
        monkeypatch.undo()
        assert path.read_bytes() == before
        recovered = ResultStore(path)
        assert {r["spec_hash"] for r in recovered} == {
            "old-0.9.0", f"new-{__version__}"}
        assert [r["spec_hash"] for r in recovered.gc()] == ["old-0.9.0"]

    def test_failed_rewrite_then_concurrent_readers_stay_consistent(
            self, tmp_path, monkeypatch):
        """Failure injection + racing readers: an injected mid-compact
        crash must be invisible to every concurrently loading reader."""
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.put_many([_record("exp", "0.9.0"), _record("exp")])
        expected = {"exp-0.9.0", f"exp-{__version__}"}
        errors = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                try:
                    seen = {r["spec_hash"] for r in ResultStore(path)}
                except ValueError as exc:
                    errors.append(str(exc))
                    return
                if seen != expected:
                    errors.append(f"readers saw {seen}")
                    return

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        real_replace = os.replace
        try:
            calls = {"n": 0}

            def flaky_replace(src, dst):
                calls["n"] += 1
                raise OSError("injected")

            monkeypatch.setattr(os, "replace", flaky_replace)
            for _ in range(5):
                with pytest.raises(OSError):
                    store.compact()
                # compact mutated the in-memory view; reload from disk so
                # the next attempt starts from the persisted state.
                store = ResultStore(path)
            assert calls["n"] == 5
        finally:
            monkeypatch.setattr(os, "replace", real_replace)
            stop.set()
            for thread in threads:
                thread.join()
        assert errors == []
