"""Registry-parameterised conformance suite for the Algorithm contract.

Every algorithm registered in :mod:`repro.algorithms.registry` — including
drop-in additions — is run through the same battery: registry metadata is
well-formed, the attach/seed/stream/run/results lifecycle round-trips
against the NetworkX reference, ``summarize`` is deterministic across NoC
kernels, and per-block algorithm state survives a snapshot
capture/restore.  A new workload file passes this suite or it does not
ship; nothing here is specialised per algorithm beyond what its declared
capabilities say.
"""

from __future__ import annotations

import pytest

from repro.algorithms import Algorithm, QueryAlgorithm, StreamingAlgorithm
from repro.algorithms.registry import (
    algorithm_infos,
    algorithm_names,
    get_algorithm,
    query_algorithm_names,
    streaming_algorithm_names,
)
from repro.arch.config import ChipConfig
from repro.baselines.networkx_ref import build_networkx
from repro.datasets.sbm import symmetrize
from repro.graph.graph import DynamicGraph
from repro.harness import ChipSpec, DatasetSpec, RunOptions, Scenario
from repro.harness.runner import run_scenario
from repro.runtime.device import AMCCADevice
from repro.snapshot import capture, restore_into

from helpers import random_edges, requires_numpy

#: Concrete registry entries (``ingest`` has no class to conform).
CONCRETE = [info for info in algorithm_infos() if info.cls is not None]
CONCRETE_IDS = [info.name for info in CONCRETE]

NUM_VERTICES = 20
NUM_EDGES = 60
SEED = 5


def fixed_edges(info):
    """One small fixed dataset everything agrees on: symmetrised, and
    weighted only where the algorithm consumes weights."""
    edges = random_edges(NUM_VERTICES, NUM_EDGES, seed=SEED,
                         weights=info.name == "sssp")
    return symmetrize(edges)


def attach_fresh(info, *, seed_algorithm=True):
    algorithm = info.instantiate(root=0)
    device = AMCCADevice(ChipConfig.small(edge_list_capacity=4))
    graph = DynamicGraph(device, NUM_VERTICES, seed=SEED)
    graph.attach(algorithm)
    if seed_algorithm:
        algorithm.seed(graph, root=0)
    return device, graph, algorithm


# ----------------------------------------------------------------------
# Registry metadata
# ----------------------------------------------------------------------
def test_registry_lists_ingest_first_and_the_new_workloads():
    names = algorithm_names()
    assert names[0] == "ingest"
    assert {"bfs", "sssp", "components", "pagerank", "triangles",
            "jaccard", "kcore", "labelprop"} <= set(names)


@pytest.mark.parametrize("info", CONCRETE, ids=CONCRETE_IDS)
def test_registry_entry_well_formed(info):
    assert issubclass(info.cls, Algorithm)
    # The decorator stamps identity and capabilities onto the class.
    assert info.cls.name == info.name
    assert info.cls.caps is info.caps
    assert info.summary  # one-line docstring summary feeds `repro algos list`
    assert info.caps.result_arity in ("vertex", "pair", "aggregate", "none")
    assert info.caps.streaming or info.caps.query
    # A query phase needs fully drained increments.
    if info.caps.query:
        assert not info.caps.supports_truncation
    assert info.as_dict()["name"] == info.name


def test_ingest_is_a_classless_pseudo_entry():
    info = get_algorithm("ingest")
    assert info.cls is None
    assert info.instantiate(root=3) is None
    assert info.caps.result_arity == "none"


def test_capability_views_partition_the_registry():
    assert set(streaming_algorithm_names()) == {
        name for name in algorithm_names()
        if get_algorithm(name).caps.streaming}
    assert set(query_algorithm_names()) == {
        name for name in algorithm_names()
        if get_algorithm(name).caps.query}


# ----------------------------------------------------------------------
# Base contract: no duck-typing required
# ----------------------------------------------------------------------
def test_base_contract_defaults_make_hasattr_unnecessary():
    # The runner calls seed()/run() unconditionally; the base class makes
    # both safe no-ops, so `hasattr` duck-typing is gone by construction.
    class Minimal(Algorithm):
        def init_state(self, block):
            block.state.setdefault("x", 0)

    algo = Minimal()
    device = AMCCADevice(ChipConfig.small(edge_list_capacity=2))
    graph = DynamicGraph(device, 4, seed=1)
    graph.attach(algo)
    assert algo.graph is graph
    algo.seed(graph, root=0)          # base no-op
    assert algo.run(graph) is None    # base no-op: no query phase
    assert algo.summarize({}) == {}


@pytest.mark.parametrize("info", CONCRETE, ids=CONCRETE_IDS)
def test_no_override_reintroduces_required_duck_typing(info):
    # Every registered class exposes the full lifecycle surface.
    for method in ("attach", "init_state", "seed", "on_edge_inserted",
                   "run", "results", "reference", "verify", "summarize"):
        assert callable(getattr(info.cls, method)), (info.name, method)


def test_legacy_register_and_aliases_keep_working():
    # Pre-1.4 subclasses called graph.attach -> algorithm.register(graph);
    # the aliases and the register() entry point survive, deprecated.
    assert StreamingAlgorithm is Algorithm
    assert QueryAlgorithm is Algorithm

    calls = []

    class Legacy(Algorithm):
        def register(self, graph):  # old-style override
            calls.append(graph)
            self.graph = graph

        def init_state(self, block):
            pass

    device = AMCCADevice(ChipConfig.small(edge_list_capacity=2))
    graph = DynamicGraph(device, 4, seed=1)
    graph.attach(Legacy())
    assert calls == [graph]

    with pytest.warns(DeprecationWarning):
        Algorithm().register(graph)


def test_harness_algorithm_constants_are_deprecated_registry_views():
    import repro.harness as harness
    import repro.harness.scenario as scenario_mod

    for module in (harness, scenario_mod):
        with pytest.warns(DeprecationWarning):
            assert module.ALGORITHMS == algorithm_names()
        with pytest.warns(DeprecationWarning):
            assert module.QUERY_ALGORITHMS == query_algorithm_names()


# ----------------------------------------------------------------------
# Lifecycle round-trip against the reference
# ----------------------------------------------------------------------
@pytest.mark.parametrize("info", CONCRETE, ids=CONCRETE_IDS)
def test_lifecycle_results_agree_with_reference(info):
    edges = fixed_edges(info)
    _, graph, algorithm = attach_fresh(info)
    graph.stream_increment(edges)
    result = algorithm.run(graph)
    if info.caps.query:
        assert result is not None and result.cycles > 0
    results = algorithm.results(graph)
    kwargs = {"root": 0} if info.caps.needs_root else {}
    try:
        reference = algorithm.reference(build_networkx(edges, NUM_VERTICES),
                                        **kwargs)
    except ImportError as exc:
        # e.g. networkx's pagerank needs numpy/scipy on no-numpy installs.
        pytest.skip(f"{info.name} reference needs an optional dependency: {exc}")
    assert algorithm.verify(results, reference), (
        f"{info.name}: chip results disagree with reference")
    summary = algorithm.summarize(results)
    assert isinstance(summary, dict) and summary
    assert summary == algorithm.summarize(results)  # pure function


# ----------------------------------------------------------------------
# Kernel-independence of the whole record (summarize included)
# ----------------------------------------------------------------------
def contract_scenario(name):
    info = get_algorithm(name)
    return Scenario(
        name=f"contract-{name}",
        dataset=DatasetSpec(vertices=NUM_VERTICES, edges=48, sampling="edge",
                            num_increments=2, symmetric=True,
                            weighted=name == "sssp", seed=SEED,
                            generator="uniform"),
        chip=ChipSpec(side=4, edge_list_capacity=4),
        algorithm=name,
        options=RunOptions(root=0),
    )


@requires_numpy
@pytest.mark.parametrize("name", CONCRETE_IDS)
def test_record_identical_across_kernels(name):
    python_record = run_scenario(contract_scenario(name), kernel="python")
    numpy_record = run_scenario(contract_scenario(name), kernel="numpy")
    assert python_record == numpy_record
    assert python_record["algo_metrics"]


# ----------------------------------------------------------------------
# Snapshot capture/restore of per-block algorithm state
# ----------------------------------------------------------------------
@pytest.mark.parametrize("info", CONCRETE, ids=CONCRETE_IDS)
def test_snapshot_roundtrip_preserves_algorithm_state(info):
    edges = fixed_edges(info)
    half = len(edges) // 2
    _, graph, algorithm = attach_fresh(info)
    graph.stream_increment(edges[:half])
    snap = capture(graph)

    # Fresh device/graph/algorithm; snapshot overlays the seeded state, so
    # host-side seeding is skipped (mirrors the harness restore path).
    _, fresh_graph, fresh_algorithm = attach_fresh(info, seed_algorithm=False)
    restore_into(fresh_graph, snap)
    assert capture(fresh_graph).state_hash == snap.state_hash

    # Both halves continue identically: same streamed schedule, same query
    # phase, same results, same per-block state hash at the end.
    graph.stream_increment(edges[half:])
    fresh_graph.stream_increment(edges[half:])
    result = algorithm.run(graph)
    fresh_result = fresh_algorithm.run(fresh_graph)
    if info.caps.query:
        assert result.cycles == fresh_result.cycles
    assert algorithm.results(graph) == fresh_algorithm.results(fresh_graph)
    assert (algorithm.summarize(algorithm.results(graph))
            == fresh_algorithm.summarize(fresh_algorithm.results(fresh_graph)))
    assert capture(graph).state_hash == capture(fresh_graph).state_hash
