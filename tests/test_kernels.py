"""Tests for the numpy NoC kernel layer and the message arena.

Covers kernel resolution (config field x ``REPRO_KERNEL`` environment),
the adaptive vector-mode machinery of
:class:`~repro.arch.kernels.NumpyCycleAccurateNoC` (bit-identical schedules
against both the python kernel and the dictionary reference model, across
mode switches), the vectorised latency-mode batch injection, the
kernel-independence of harness identities/records, and the message
arena/freelist recycling.
"""

import random

import pytest

from repro.arch.config import ChipConfig
from repro.arch.message import (
    Message,
    acquire_message,
    release_message,
)
from repro.arch.noc import CycleAccurateNoC, LatencyNoC, build_noc
from repro.arch.routing import make_routing
from repro.arch.stats import SimStats
from repro.harness.scenario import ChipSpec, Scenario

from helpers import requires_numpy
from test_noc_equivalence import drain_schedule, normalize

np = pytest.importorskip("numpy")

from repro.arch import kernels  # noqa: E402 - needs numpy present
from repro.arch._native import HAVE_NATIVE  # noqa: E402
from repro.arch.kernels import NumpyCycleAccurateNoC, resolve_kernel  # noqa: E402

# With the C extension built, "auto" prefers native over numpy (both are
# bit-identical, so the preference is pure speed ordering).
AUTO_KERNEL = "native" if HAVE_NATIVE else "numpy"


def make_numpy_noc(width=8, height=8, routing="yx", vector_min=None,
                   per_link=False, max_message_words=8):
    cfg = ChipConfig(width=width, height=height, routing=routing,
                     max_message_words=max_message_words)
    stats = SimStats(num_cells=cfg.num_cells)
    pol = make_routing(cfg)
    if per_link:
        stats.enable_link_accounting(pol.link_table.num_links)
    noc = NumpyCycleAccurateNoC(cfg, pol, stats)
    if vector_min is not None:
        noc._enter_at = vector_min
        noc._exit_at = max(1, vector_min // 4)
    return noc


class TestResolveKernel:
    def test_auto_resolves_to_fastest_available(self, monkeypatch):
        monkeypatch.delenv(kernels.KERNEL_ENV, raising=False)
        assert resolve_kernel(ChipConfig(width=4, height=4)) == AUTO_KERNEL

    def test_auto_prefers_numpy_when_native_missing(self, monkeypatch):
        monkeypatch.delenv(kernels.KERNEL_ENV, raising=False)
        monkeypatch.setattr(kernels, "HAVE_NATIVE", False)
        assert resolve_kernel(ChipConfig(width=4, height=4)) == "numpy"

    def test_env_overrides_auto(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV, "python")
        assert resolve_kernel(ChipConfig(width=4, height=4)) == "python"
        monkeypatch.setenv(kernels.KERNEL_ENV, "auto")
        assert resolve_kernel(ChipConfig(width=4, height=4)) == AUTO_KERNEL

    def test_explicit_config_beats_env(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV, "numpy")
        cfg = ChipConfig(width=4, height=4, kernel="python")
        assert resolve_kernel(cfg) == "python"

    def test_bad_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV, "fortran")
        with pytest.raises(ValueError):
            resolve_kernel(ChipConfig(width=4, height=4))

    def test_explicit_numpy_without_numpy_raises(self, monkeypatch):
        monkeypatch.setattr(kernels, "HAVE_NUMPY", False)
        with pytest.raises(RuntimeError):
            resolve_kernel(ChipConfig(width=4, height=4, kernel="numpy"))

    def test_auto_without_numpy_falls_back(self, monkeypatch):
        monkeypatch.delenv(kernels.KERNEL_ENV, raising=False)
        monkeypatch.setattr(kernels, "HAVE_NUMPY", False)
        monkeypatch.setattr(kernels, "HAVE_NATIVE", False)
        assert resolve_kernel(ChipConfig(width=4, height=4)) == "python"

    def test_build_noc_selects_numpy_kernel(self):
        cfg = ChipConfig(width=4, height=4, kernel="numpy")
        stats = SimStats(num_cells=cfg.num_cells)
        noc = build_noc(cfg, stats)
        assert isinstance(noc, NumpyCycleAccurateNoC)
        # ...which still is a CycleAccurateNoC for callers' isinstance checks.
        assert isinstance(noc, CycleAccurateNoC)

    def test_build_noc_python_pin(self):
        cfg = ChipConfig(width=4, height=4, kernel="python")
        stats = SimStats(num_cells=cfg.num_cells)
        noc = build_noc(cfg, stats)
        assert type(noc) is CycleAccurateNoC

    def test_config_rejects_unknown_kernel(self):
        with pytest.raises(ValueError):
            ChipConfig(width=4, height=4, kernel="cuda")


class TestNumpyKernelSchedules:
    """The numpy kernel's schedules are bit-identical to the python sweep,
    across vector-mode entry/exit and on both sweep paths."""

    @pytest.mark.parametrize("vector_min", [1, 4, 1 << 30])
    @pytest.mark.parametrize("routing", ["yx", "xy"])
    def test_random_storm_matches_python_kernel(self, routing, vector_min):
        cfg = ChipConfig(width=8, height=8, routing=routing)
        stats = SimStats(num_cells=cfg.num_cells)
        py = CycleAccurateNoC(cfg, make_routing(cfg), stats)
        nk = make_numpy_noc(routing=routing, vector_min=vector_min)
        rng = random.Random(99)
        sched = sorted(
            (rng.randrange(25), rng.randrange(64), rng.randrange(64),
             rng.choice((2, 2, 8, 12)))
            for _ in range(400)
        )
        a = drain_schedule(py, sched)
        b = drain_schedule(nk, sched)
        assert normalize(a) == normalize(b)
        for field in ("hops", "link_busy", "messages_injected"):
            assert getattr(py.stats, field) == getattr(nk.stats, field), field

    def test_per_link_accounting_matches(self):
        cfg = ChipConfig(width=8, height=8)
        stats = SimStats(num_cells=cfg.num_cells)
        pol = make_routing(cfg)
        stats.enable_link_accounting(pol.link_table.num_links)
        py = CycleAccurateNoC(cfg, pol, stats)
        nk = make_numpy_noc(vector_min=2, per_link=True)
        rng = random.Random(5)
        sched = sorted(
            (rng.randrange(8), rng.randrange(64), rng.randrange(64), 2)
            for _ in range(150)
        )
        drain_schedule(py, sched)
        drain_schedule(nk, sched)
        assert py.stats.link_busy_per_link == nk.stats.link_busy_per_link

    def test_mode_switches_happen_and_preserve_schedule(self):
        nk = make_numpy_noc(width=8, height=8, vector_min=8)
        rng = random.Random(3)
        # Two bursts separated by a lull, so the kernel enters vector mode,
        # drains back out (free exit at empty), and re-enters.
        sched = sorted(
            (rng.choice((0, 1, 40, 41)), rng.randrange(64), rng.randrange(64), 2)
            for _ in range(200)
        )
        modes = set()
        out = []
        pending = list(sched)
        cycle = 0
        while (pending or not nk.is_empty) and cycle < 10_000:
            while pending and pending[0][0] == cycle:
                _, src, dst, size = pending.pop(0)
                nk.inject(Message(src=src, dst=dst, action="a", size_words=size),
                          cycle)
            for msg in nk.advance(cycle):
                out.append((cycle, msg.msg_id, msg.hops))
            modes.add(nk._vector_mode)
            cycle += 1
        assert modes == {True, False}, "both modes should have been exercised"
        cfg = ChipConfig(width=8, height=8)
        stats = SimStats(num_cells=cfg.num_cells)
        py = CycleAccurateNoC(cfg, make_routing(cfg), stats)
        assert normalize(out) == normalize(drain_schedule(py, sched))

    def test_delivered_messages_carry_route_length_hops(self):
        nk = make_numpy_noc()
        cfg = nk.config
        msg = Message(src=cfg.cc_at(0, 0), dst=cfg.cc_at(3, 4), action="a")
        nk.inject(msg, 0)
        delivered = []
        cycle = 0
        while not nk.is_empty:
            delivered += nk.advance(cycle)
            cycle += 1
        assert delivered == [msg]
        assert msg.hops == cfg.manhattan(msg.src, msg.dst)


class TestLatencyVectorInject:
    def test_inject_many_matches_scalar_injects(self):
        cfg = ChipConfig(width=8, height=8, fidelity="latency")
        rng = random.Random(21)
        batches = [
            [Message(src=rng.randrange(64), dst=rng.randrange(64), action="a",
                     size_words=rng.choice((2, 8, 12)))
             for _ in range(rng.randrange(1, 40))]
            for _ in range(6)
        ]
        results = []
        for vectorized in (False, True):
            stats = SimStats(num_cells=cfg.num_cells)
            noc = LatencyNoC(cfg, make_routing(cfg), stats,
                             vectorized=vectorized)
            rng_ids = []
            for cycle, batch in enumerate(batches):
                clones = [Message(src=m.src, dst=m.dst, action=m.action,
                                  size_words=m.size_words) for m in batch]
                noc.inject_many(clones, cycle)
                rng_ids.extend(c.msg_id for c in clones)
            base = rng_ids[0]
            out = []
            cycle = 0
            while not noc.is_empty and cycle < 500:
                out.extend((cycle, m.msg_id - base, m.hops)
                           for m in noc.advance(cycle))
                cycle += 1
            results.append((out, stats.hops, stats.messages_injected))
        assert results[0] == results[1]


class TestKernelIsExecutionDetail:
    """The kernel pin never leaks into identities, seeds or records."""

    def test_spec_hash_and_seed_ignore_kernel(self):
        base = Scenario(name="k", chip=ChipSpec(side=8))
        for kernel in ("python", "numpy", "native", "auto"):
            pinned = Scenario(name="k", chip=ChipSpec(side=8, kernel=kernel))
            assert pinned.spec_hash() == base.spec_hash()
            assert pinned.graph_seed() == base.graph_seed()
            assert "kernel" not in pinned.spec_dict()["chip"]

    @requires_numpy
    def test_records_identical_across_kernels(self):
        from repro.harness.runner import run_scenario
        from repro.harness.scenario import DatasetSpec

        scenario = Scenario(
            name="kernel-equiv",
            dataset=DatasetSpec(vertices=80, edges=600, num_increments=3,
                                seed=13),
            chip=ChipSpec(side=8, edge_list_capacity=8),
            algorithm="bfs",
        )
        kernels_to_run = ["python", "numpy"]
        if HAVE_NATIVE:
            kernels_to_run.append("native")
        records = [run_scenario(scenario, kernel=kernel)
                   for kernel in kernels_to_run]
        for other in records[1:]:
            assert other == records[0]


class TestMessageArena:
    def test_acquire_reuses_released_carrier(self):
        msg = acquire_message(1, 2, "a", None, (7,), 3)
        assert msg._pooled
        first_id = msg.msg_id
        release_message(msg)
        again = acquire_message(4, 5, "b")
        assert again is msg  # LIFO freelist reuse
        assert again.msg_id > first_id  # fresh identity
        assert again.src == 4 and again.dst == 5 and again.action == "b"
        assert again.created_cycle == -1 and again.delivered_cycle == -1
        assert again.hops == 0 and again.position == 4
        release_message(again)

    def test_release_drops_payload_references(self):
        operands = (object(),)
        msg = acquire_message(0, 1, "a", None, operands, 2)
        release_message(msg)
        assert msg.operands == ()
        assert msg.target is None

    def test_plain_messages_are_not_pooled(self):
        msg = Message(src=0, dst=1, action="a")
        assert not msg._pooled

    def test_double_release_is_harmless(self):
        from repro.arch import message as message_mod

        msg = acquire_message(0, 1, "a")
        release_message(msg)
        before = len(message_mod._MESSAGE_POOL)
        # The simulator only releases messages whose _pooled flag is set;
        # release_message clears it, so a second release cannot duplicate
        # the carrier in the pool.
        assert not msg._pooled
        acquired = acquire_message(0, 2, "b")
        assert len(message_mod._MESSAGE_POOL) == before - 1
        release_message(acquired)

    def test_runtime_run_recycles_messages(self):
        """An end-to-end device run leaves carriers in the freelist."""
        from repro.arch import message as message_mod
        from repro.runtime.device import AMCCADevice
        from repro.runtime.terminator import Terminator

        device = AMCCADevice(ChipConfig.small())
        sink = device.allocate_on(30, {"hits": 0})

        def handler(ctx, target, n):
            target["hits"] += 1
            if n > 0:
                ctx.propagate("ping", sink, n - 1)

        device.register_action("ping", handler)
        device.send("ping", sink, 5)
        device.run(Terminator())
        assert device.get_object(sink)["hits"] == 6
        assert len(message_mod._MESSAGE_POOL) > 0
