"""The documentation's relative links must resolve (CI-checked contract).

Runs ``tools/check_doc_links.py`` — the same script the CI docs job uses —
over README.md and docs/*.md, plus unit checks of its link scanner.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKER = REPO_ROOT / "tools" / "check_doc_links.py"


def run_checker(*args):
    return subprocess.run(
        [sys.executable, str(CHECKER), *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )


class TestRepoDocs:
    def test_docs_exist(self):
        assert (REPO_ROOT / "docs" / "architecture.md").is_file()
        assert (REPO_ROOT / "docs" / "harness.md").is_file()

    def test_all_relative_links_resolve(self):
        result = run_checker()
        assert result.returncode == 0, result.stdout + result.stderr


class TestChecker:
    def test_broken_link_detected(self, tmp_path):
        doc = tmp_path / "broken.md"
        doc.write_text("see [missing](does-not-exist.md) here\n")
        result = run_checker(str(doc))
        assert result.returncode == 1
        assert "does-not-exist.md" in result.stdout

    def test_external_and_fragment_links_skipped(self, tmp_path):
        doc = tmp_path / "ok.md"
        (tmp_path / "other.md").write_text("x\n")
        doc.write_text(
            "[a](https://example.com) [b](#section) [c](other.md#part)\n"
        )
        result = run_checker(str(doc))
        assert result.returncode == 0, result.stdout

    def test_missing_input_file_fails(self, tmp_path):
        result = run_checker(str(tmp_path / "absent.md"))
        assert result.returncode == 1
