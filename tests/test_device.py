"""Tests for the AMCCADevice facade (the paper's Listing 1 host API)."""

import pytest

from repro.arch.address import Address
from repro.arch.config import ChipConfig
from repro.runtime.device import AMCCADevice
from repro.runtime.terminator import Terminator


@pytest.fixture
def device():
    return AMCCADevice(ChipConfig(width=4, height=4))


class TestRegistration:
    def test_register_and_send(self, device):
        hits = []
        device.register_action("ping", lambda ctx, obj, x: hits.append(x))
        device.send("ping", Address(10, -1), 99)
        device.run(max_cycles=100)
        assert hits == [99]

    def test_send_unregistered_raises(self, device):
        with pytest.raises(KeyError):
            device.send("missing", Address(0, -1))

    def test_data_transfer_requires_registered_action(self, device):
        with pytest.raises(KeyError):
            device.register_data_transfer([1, 2], "missing", lambda item: (Address(0, -1), ()))

    def test_default_config_is_paper_chip(self):
        dev = AMCCADevice()
        assert dev.config.width == 32 and dev.config.height == 32


class TestMemory:
    def test_allocate_on_and_get_object(self, device):
        addr = device.allocate_on(7, {"a": 1}, words=2)
        assert addr.cc_id == 7
        assert device.get_object(addr) == {"a": 1}
        assert device.memory_occupancy()[7] == 2


class TestDataTransfer:
    def test_items_streamed_through_io_cells(self, device):
        received = []
        device.register_action(
            "collect", lambda ctx, obj, item: received.append(item)
        )
        targets = {i: device.allocate_on(i % device.config.num_cells, f"v{i}")
                   for i in range(8)}
        count = device.register_data_transfer(
            list(range(8)), "collect", lambda item: (targets[item], (item,))
        )
        assert count == 8
        device.run(max_cycles=500)
        assert sorted(received) == list(range(8))

    def test_target_object_passed_to_handler(self, device):
        seen = []
        device.register_action("touch", lambda ctx, obj: seen.append(obj))
        addr = device.allocate_on(3, "the-object")
        device.register_data_transfer([0], "touch", lambda item: (addr, ()))
        device.run(max_cycles=200)
        assert seen == ["the-object"]


class TestRun:
    def test_run_returns_cycle_counts(self, device):
        device.register_action("noop", lambda ctx, obj: None)
        device.send("noop", Address(15, -1))
        result = device.run(max_cycles=200, phase="phase-a")
        assert result.cycles > 0
        assert result.phase == "phase-a"
        assert result.end_cycle == result.start_cycle + result.cycles

    def test_sequential_runs_accumulate_cycles(self, device):
        device.register_action("noop", lambda ctx, obj: None)
        device.send("noop", Address(15, -1))
        first = device.run(max_cycles=200)
        device.send("noop", Address(12, -1))
        second = device.run(max_cycles=200)
        assert second.start_cycle == first.end_cycle
        assert device.simulator.cycle == second.end_cycle

    def test_terminator_finishes(self, device):
        device.register_action("noop", lambda ctx, obj: None)
        term = Terminator()
        device.send("noop", Address(5, -1))
        device.run(terminator=term, max_cycles=200)
        assert term.is_finished and term.quiet

    def test_host_entry_cell_uses_io_border(self):
        dev = AMCCADevice(ChipConfig(width=4, height=4, io_sides=("west",)))
        entry = dev._host_entry_cell(dev.config.cc_at(3, 2))
        assert dev.config.coords_of(entry) == (0, 2)

    def test_host_entry_cell_other_sides(self):
        for side, expected in (("east", (3, 2)), ("north", (1, 0)), ("south", (1, 3))):
            dev = AMCCADevice(ChipConfig(width=4, height=4, io_sides=(side,)))
            entry = dev._host_entry_cell(dev.config.cc_at(1, 2))
            assert dev.config.coords_of(entry) == expected


class TestDiffusion:
    def test_propagation_chain_reaches_depth(self, device):
        """An action that re-propagates N times visits N+1 cells."""
        visits = []

        def hop(ctx, obj, remaining):
            visits.append(ctx.cc_id)
            if remaining > 0:
                nxt = (ctx.cc_id + 1) % device.config.num_cells
                ctx.propagate("hop", Address(nxt, -1), remaining - 1)

        device.register_action("hop", hop)
        device.send("hop", Address(0, -1), 5)
        device.run(max_cycles=500)
        assert len(visits) == 6

    def test_stats_and_energy_accessible(self, device):
        device.register_action("noop", lambda ctx, obj: None)
        device.send("noop", Address(3, -1))
        device.run(max_cycles=100)
        stats = device.stats()
        assert stats.tasks_executed >= 1
        assert device.energy_report().total_uj > 0
