"""Pipeline-parallel increment sharding: byte-identity without prefix replay.

The acceptance contract: ``--shard-increments N --pipeline`` produces a
store byte-identical to the serial run while the per-shard
``simulated_increments`` counts prove no increment is simulated twice —
replay mode's counts grow with shard index, pipeline mode's do not.
"""

from __future__ import annotations

import json
import os

import pytest

from helpers import requires_numpy

from repro.harness import ResultStore, run_suite
from repro.harness.pool import WorkerPool
from repro.harness.runner import run_scenario, run_scenario_sharded
from repro.harness.scenario import ChipSpec, DatasetSpec, Scenario

pytestmark = requires_numpy


def eight_increment_scenario(name="pipe-bfs", algorithm="bfs") -> Scenario:
    return Scenario(
        name=name,
        dataset=DatasetSpec(vertices=60, edges=480, num_increments=8, seed=5),
        chip=ChipSpec(side=8, edge_list_capacity=4),
        algorithm=algorithm,
    )


class TestInProcess:
    def test_pipeline_record_identical_to_serial(self):
        scenario = eight_increment_scenario()
        serial = run_scenario(scenario)
        piped = run_scenario_sharded(scenario, 4, pipeline=True)
        assert json.dumps(piped, sort_keys=True) == \
            json.dumps(serial, sort_keys=True)

    def test_no_prefix_replay_cpu_proof(self):
        """Replay CPU grows with shard index; pipeline CPU does not."""
        scenario = eight_increment_scenario()
        replay_parts, pipe_parts = [], []
        replay = run_scenario_sharded(scenario, 4, parts_out=replay_parts)
        piped = run_scenario_sharded(scenario, 4, pipeline=True,
                                     parts_out=pipe_parts)
        assert replay == piped
        total = scenario.dataset.num_increments
        spans = [tuple(p["span"]) for p in pipe_parts]
        # Pipeline: every shard simulates exactly its own span -> total CPU
        # is one pass over the stream, independent of the shard count.
        assert [p["simulated_increments"] for p in pipe_parts] == \
            [b - a for a, b in spans]
        assert sum(p["simulated_increments"] for p in pipe_parts) == total
        # Replay: shard K simulates its whole prefix, so the counts climb
        # with shard index and the last shard covers the full stream.
        replay_counts = [p["simulated_increments"] for p in replay_parts]
        assert replay_counts == [b for _a, b in spans]
        assert replay_counts[-1] == total
        assert sum(replay_counts) > total

    def test_every_shard_count_at_every_boundary(self):
        """Interleaved A/B across shard counts: identical records, linear
        pipeline CPU, quadratic-ish replay CPU."""
        scenario = eight_increment_scenario(name="pipe-ingest",
                                            algorithm="ingest")
        serial = json.dumps(run_scenario(scenario), sort_keys=True)
        total = scenario.dataset.num_increments
        for shards in (2, 3, 8):
            parts = []
            piped = run_scenario_sharded(scenario, shards, pipeline=True,
                                         parts_out=parts)
            assert json.dumps(piped, sort_keys=True) == serial, shards
            assert sum(p["simulated_increments"] for p in parts) == total


class TestPooled:
    def test_pooled_pipeline_identical_with_fewer_workers_than_shards(self):
        """5 shards on 2 workers: exercises the in-order dispatch argument
        that makes checkpoint waiting deadlock-free."""
        scenario = eight_increment_scenario()
        serial = run_scenario(scenario)
        pool = WorkerPool(2)
        try:
            parts = []
            piped = run_scenario_sharded(scenario, 5, pool=pool,
                                         pipeline=True, timeout=120,
                                         parts_out=parts)
        finally:
            pool.shutdown()
        assert json.dumps(piped, sort_keys=True) == \
            json.dumps(serial, sort_keys=True)
        assert sum(p["simulated_increments"] for p in parts) == \
            scenario.dataset.num_increments

    def test_suite_pipeline_store_byte_identical(self, tmp_path):
        scenarios = [
            eight_increment_scenario(),
            eight_increment_scenario(name="pipe-ingest", algorithm="ingest"),
        ]
        serial_store = ResultStore(tmp_path / "serial.jsonl")
        report = run_suite(list(scenarios), jobs=1, store=serial_store)
        assert not report.failures
        pool = WorkerPool(2)
        try:
            pipe_store = ResultStore(tmp_path / "pipe.jsonl")
            report = run_suite(list(scenarios), jobs=2, store=pipe_store,
                               shard_increments=4, pipeline=True, pool=pool,
                               timeout=120)
        finally:
            pool.shutdown()
        assert not report.failures
        assert (tmp_path / "serial.jsonl").read_bytes() == \
            (tmp_path / "pipe.jsonl").read_bytes()

    def test_spill_dir_is_cleaned_up(self, tmp_path, monkeypatch):
        import tempfile

        monkeypatch.setattr(tempfile, "tempdir", str(tmp_path))
        scenario = eight_increment_scenario()
        pool = WorkerPool(2)
        try:
            run_scenario_sharded(scenario, 3, pool=pool, pipeline=True,
                                 timeout=120)
        finally:
            pool.shutdown()
        leftovers = [p for p in os.listdir(tmp_path)
                     if p.startswith("repro-pipeline-")]
        assert leftovers == []


class TestFailurePropagation:
    def test_upstream_failure_marker_unblocks_waiters(self, tmp_path):
        from repro.harness.runner import _await_snapshot

        path = str(tmp_path / "x.snap")
        open(path + ".failed", "w").close()
        with pytest.raises(RuntimeError, match="upstream pipeline shard"):
            _await_snapshot(path, timeout_s=5)

    def test_wait_timeout_is_actionable(self, tmp_path):
        from repro.harness.runner import _await_snapshot

        with pytest.raises(TimeoutError, match="waited"):
            _await_snapshot(str(tmp_path / "never.snap"), timeout_s=0.05)
