"""Smoke tests for the runnable examples (the fast ones).

These run the example scripts' ``main()`` in-process so a refactor of the
public API cannot silently break the documented entry points.  The slower
examples (the full GraphChallenge demo, the allocator comparison and the
animation) are exercised indirectly by the benchmark suite instead.
"""

import importlib.util
import sys
from pathlib import Path

from helpers import requires_numpy


EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    """Import an example script as a module without executing main()."""
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExampleScripts:
    def test_examples_directory_has_quickstart_plus_scenarios(self):
        scripts = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
        assert "quickstart.py" in scripts
        assert len(scripts) >= 3

    @requires_numpy
    def test_quickstart_runs_and_verifies(self, capsys):
        module = load_example("quickstart.py")
        module.main()
        out = capsys.readouterr().out
        assert "BFS levels match NetworkX" in out
        assert "estimated energy" in out

    def test_rpvo_anatomy_runs(self, capsys):
        module = load_example("rpvo_anatomy.py")
        module.main()
        out = capsys.readouterr().out
        assert "ghost chain depth" in out
        assert "continuations created" in out

    def test_every_example_is_importable_and_has_main(self):
        for path in EXAMPLES_DIR.glob("*.py"):
            module = load_example(path.name)
            assert hasattr(module, "main"), f"{path.name} has no main()"
            assert callable(module.main)
