"""Shared test helpers, imported explicitly as ``from helpers import ...``.

These used to live in ``tests/conftest.py`` and be imported with
``from conftest import ...``, but pytest's rootdir-based sys.path insertion
made that resolve to ``benchmarks/conftest.py`` when both directories were
collected in one run (the ``conftest`` module name is first-come-first-served
in ``sys.modules``).  A uniquely named helper module has no such collision.
"""

from __future__ import annotations

import os
import random
from typing import List, Tuple

import pytest
from hypothesis import HealthCheck, settings

from repro._compat import HAVE_NUMPY
from repro.arch.config import ChipConfig
from repro.algorithms.bfs import StreamingBFS
from repro.graph.graph import DynamicGraph
from repro.graph.rpvo import Edge
from repro.runtime.device import AMCCADevice

#: Marker for tests that need numpy-backed features (dataset generation,
#: analysis series).  The simulator itself runs numpy-free -- the no-numpy
#: CI job executes everything that is not marked with this.
requires_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="requires numpy (dataset generation / analysis)")

#: Health checks every whole-stack property test suppresses: one example
#: simulates a full chip, so hypothesis's per-example timing heuristics
#: misfire, and composite scenario strategies filter (symmetry, roots).
HYPOTHESIS_SUPPRESS = [
    HealthCheck.too_slow,
    HealthCheck.data_too_large,
    HealthCheck.filter_too_much,
]


def register_hypothesis_profiles() -> None:
    """Register the repo-wide hypothesis profiles (called from conftest).

    ``ci`` (default) keeps property tests in the seconds range; ``deep``
    is the soak budget, mirroring ``repro fuzz run``'s campaign profiles
    (:data:`repro.fuzz.campaign.FUZZ_PROFILES`).  Select with
    ``--hypothesis-profile=deep`` or ``REPRO_HYPOTHESIS_PROFILE=deep``;
    per-test ``@settings(...)`` overrides still apply on top.
    """
    settings.register_profile(
        "ci", max_examples=20, deadline=None,
        suppress_health_check=HYPOTHESIS_SUPPRESS)
    settings.register_profile(
        "deep", max_examples=200, deadline=None,
        suppress_health_check=HYPOTHESIS_SUPPRESS)
    settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "ci"))


def random_edges(num_vertices: int, num_edges: int, seed: int = 0,
                 weights: bool = False) -> List[Edge]:
    """A reproducible random directed edge list without self loops."""
    rng = random.Random(seed)
    edges: List[Edge] = []
    while len(edges) < num_edges:
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u == v:
            continue
        w = rng.randint(1, 9) if weights else 1
        edges.append(Edge(u, v, w))
    return edges


def build_bfs_graph(
    chip: ChipConfig,
    num_vertices: int,
    *,
    root: int = 0,
    seed: int = 3,
    ghost_allocator: str = "vicinity",
    ingest_only: bool = False,
) -> Tuple[AMCCADevice, DynamicGraph, StreamingBFS]:
    """Device + graph + seeded BFS, ready for streaming."""
    device = AMCCADevice(chip)
    graph = DynamicGraph(
        device,
        num_vertices,
        seed=seed,
        ghost_allocator=ghost_allocator,
        ingest_only=ingest_only,
    )
    bfs = StreamingBFS(root=root)
    graph.attach(bfs)
    bfs.seed(graph, root=root)
    return device, graph, bfs
