"""Shared test helpers, imported explicitly as ``from helpers import ...``.

These used to live in ``tests/conftest.py`` and be imported with
``from conftest import ...``, but pytest's rootdir-based sys.path insertion
made that resolve to ``benchmarks/conftest.py`` when both directories were
collected in one run (the ``conftest`` module name is first-come-first-served
in ``sys.modules``).  A uniquely named helper module has no such collision.
"""

from __future__ import annotations

import random
from typing import List, Tuple

import pytest

from repro._compat import HAVE_NUMPY
from repro.arch.config import ChipConfig
from repro.algorithms.bfs import StreamingBFS
from repro.graph.graph import DynamicGraph
from repro.graph.rpvo import Edge
from repro.runtime.device import AMCCADevice

#: Marker for tests that need numpy-backed features (dataset generation,
#: analysis series).  The simulator itself runs numpy-free -- the no-numpy
#: CI job executes everything that is not marked with this.
requires_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="requires numpy (dataset generation / analysis)")


def random_edges(num_vertices: int, num_edges: int, seed: int = 0,
                 weights: bool = False) -> List[Edge]:
    """A reproducible random directed edge list without self loops."""
    rng = random.Random(seed)
    edges: List[Edge] = []
    while len(edges) < num_edges:
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u == v:
            continue
        w = rng.randint(1, 9) if weights else 1
        edges.append(Edge(u, v, w))
    return edges


def build_bfs_graph(
    chip: ChipConfig,
    num_vertices: int,
    *,
    root: int = 0,
    seed: int = 3,
    ghost_allocator: str = "vicinity",
    ingest_only: bool = False,
) -> Tuple[AMCCADevice, DynamicGraph, StreamingBFS]:
    """Device + graph + seeded BFS, ready for streaming."""
    device = AMCCADevice(chip)
    graph = DynamicGraph(
        device,
        num_vertices,
        seed=seed,
        ghost_allocator=ghost_allocator,
        ingest_only=ingest_only,
    )
    bfs = StreamingBFS(root=root)
    graph.attach(bfs)
    bfs.seed(graph, root=root)
    return device, graph, bfs
