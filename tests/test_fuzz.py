"""Self-tests for the repro.fuzz subsystem.

Three families, mirroring the subsystem's three jobs:

* **strategies** — generated scenarios are always valid, respect the
  harness's cross-field constraints, and serialise round-trip;
* **oracle/campaign** — a green scenario reports one outcome per
  invariant; an injected perturbation (``REPRO_FUZZ_INJECT``, see
  :mod:`repro.snapshot.restore`) is caught, shrunk to the strategy floor
  and persisted as a corpus entry; crashes become failures, not aborts;
* **fingerprint** — classification is deterministic across kernels and
  each regime rule is reachable.
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import given, settings

from helpers import HYPOTHESIS_SUPPRESS, requires_numpy
from repro._compat import HAVE_NUMPY
from repro.fuzz import (
    INVARIANTS,
    REGIMES,
    check_invariants,
    classify,
    fingerprint_record,
    first_divergence,
)
from repro.algorithms.registry import (
    algorithm_names,
    query_algorithm_names,
    symmetric_algorithm_names,
)
from repro.fuzz.campaign import FUZZ_PROFILES, run_campaign
from repro.fuzz.strategies import scenarios
from repro.harness.runner import run_scenario
from repro.harness.scenario import (
    ChipSpec,
    DatasetSpec,
    RunOptions,
    Scenario,
)

#: A tiny fixed scenario with capturable boundaries: every oracle path
#: (snapshots, shards, traces) is exercised in well under a second.
FIXED = Scenario(
    name="fuzz-self",
    dataset=DatasetSpec(vertices=12, edges=24, sampling="edge",
                        num_increments=2, seed=3, generator="uniform"),
    chip=ChipSpec(side=2, edge_list_capacity=2),
    algorithm="ingest",
    options=RunOptions(snapshot_every=1),
)

TINY = settings(max_examples=15, deadline=None,
                suppress_health_check=HYPOTHESIS_SUPPRESS)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@TINY
@given(scenario=scenarios())
def test_strategy_generates_valid_scenarios(scenario):
    assert isinstance(scenario, Scenario)
    assert 0 <= scenario.options.root < scenario.dataset.vertices
    if scenario.algorithm in symmetric_algorithm_names():
        assert scenario.dataset.symmetric
    if scenario.algorithm in query_algorithm_names():
        assert scenario.options.max_cycles_per_increment is None
    # The spec serialises, hashes, and round-trips through from_dict.
    rebuilt = Scenario.from_dict(json.loads(
        json.dumps(scenario.spec_dict())))
    assert rebuilt.spec_hash() == scenario.spec_hash()


@TINY
@given(scenario=scenarios(numpy_ok=False))
def test_strategy_numpy_free_space(scenario):
    assert scenario.dataset.generator == "uniform"
    assert scenario.chip.kernel != "numpy"


def test_strategy_covers_newly_registered_algorithms():
    # The algorithm axis is drawn from the registry, so drop-in workloads
    # (kcore, labelprop) are fuzzed without touching the strategy module.
    from hypothesis import find

    assert {"kcore", "labelprop"} <= set(algorithm_names())
    for name in ("kcore", "labelprop"):
        found = find(scenarios(numpy_ok=False),
                     lambda s, name=name: s.algorithm == name,
                     settings=settings(max_examples=2000, deadline=None,
                                       suppress_health_check=HYPOTHESIS_SUPPRESS))
        assert found.algorithm == name
        assert found.dataset.symmetric  # capability-forced axis
        assert found.options.max_cycles_per_increment is None


# ----------------------------------------------------------------------
# Oracle + campaign
# ----------------------------------------------------------------------
def test_oracle_green_on_fixed_scenario():
    report = check_invariants(FIXED)
    assert [o.invariant for o in report.outcomes] == list(INVARIANTS)
    assert report.ok, [f"{o.invariant}: {o.detail}" for o in report.failures]
    assert report.classification["regime"] in REGIMES
    assert report.fingerprint["cycles"] > 0


def test_oracle_catches_injected_perturbation(monkeypatch):
    monkeypatch.setenv("REPRO_FUZZ_INJECT", "restore-stats")
    report = check_invariants(FIXED)
    assert not report.ok
    assert "snapshot_roundtrip" in {o.invariant for o in report.failures}


def test_oracle_reports_crash_as_failure(monkeypatch):
    monkeypatch.setenv("REPRO_FUZZ_INJECT", "no-such-mode")
    report = check_invariants(FIXED)
    assert not report.ok
    assert any("crashed" in o.detail for o in report.failures)


def test_campaign_green_and_coverage_complete(tmp_path):
    result = run_campaign(profile="ci", max_examples=4, seed=0,
                          corpus_dir=str(tmp_path))
    assert result.ok
    assert result.examples == 4
    assert result.coverage_complete()
    assert not list(tmp_path.iterdir())  # no corpus entry when green
    if not HAVE_NUMPY:
        assert result.counters["kernel_equivalence"]["skip"] == 4


def test_campaign_catches_shrinks_and_persists(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_FUZZ_INJECT", "restore-stats")
    result = run_campaign(profile="ci", max_examples=10, seed=2,
                          corpus_dir=str(tmp_path))
    assert not result.ok
    spec = result.failure["scenario"]
    # hypothesis shrank to the floor of the strategy space: the smallest
    # graph on the smallest chip with the fewest increments.
    assert spec["dataset"]["vertices"] == 8
    assert spec["dataset"]["edges"] == 8
    assert spec["dataset"]["num_increments"] == 2
    assert spec["chip"]["side"] == 2
    # ...and the minimal spec was persisted, corpus-ready.
    assert result.corpus_file is not None
    with open(result.corpus_file, encoding="utf-8") as fh:
        entry = json.load(fh)
    assert entry["scenario"] == spec
    assert entry["failed"]
    assert entry["found_by"]["seed"] == 2


def test_campaign_rejects_unknown_profile():
    with pytest.raises(ValueError):
        run_campaign(profile="nope")
    assert set(FUZZ_PROFILES) == {"ci", "deep"}


# ----------------------------------------------------------------------
# Fingerprint + classification
# ----------------------------------------------------------------------
def _clean_record(kernel):
    scenario = FIXED.with_(options=RunOptions())
    return run_scenario(scenario, kernel=kernel)


@requires_numpy
def test_fingerprint_identical_across_kernels():
    assert (fingerprint_record(_clean_record("python"))
            == fingerprint_record(_clean_record("numpy")))


def _fp(**overrides):
    base = {"peak_in_flight": 0, "storm_threshold": 768,
            "idle_fraction": 0.0, "mean_activation": 0.10}
    base.update(overrides)
    return base


def test_classify_reaches_every_regime():
    assert classify(_fp(peak_in_flight=800))["regime"] == "storm"
    assert classify(_fp(peak_in_flight=800))["kernel_recommendation"] == "numpy"
    assert classify(_fp(idle_fraction=0.9,
                        mean_activation=0.01))["regime"] == "parked"
    assert classify(_fp(mean_activation=0.40))["regime"] == "dense-diffusion"
    assert classify(_fp())["regime"] == "sparse-diffusion"
    assert classify(_fp())["kernel_recommendation"] == "python"


def test_first_divergence_reports_deepest_first_path():
    a = {"x": [1, {"y": 2}], "z": 3}
    assert first_divergence(a, {"x": [1, {"y": 2}], "z": 3}) is None
    assert first_divergence(a, {"x": [1, {"y": 9}], "z": 3}) \
        == "record.x[1].y: 2 != 9"
    assert first_divergence(a, {"x": [1], "z": 3}) == "record.x: length 2 != 1"
    assert first_divergence(a, {"z": 3}) == "record.x: missing on right"


def test_fuzz_package_imports_without_hypothesis_backed_names():
    # The eager surface (oracle + fingerprint) must stay stdlib-importable;
    # hypothesis-backed names resolve lazily.
    import repro.fuzz as fuzz

    assert fuzz.check_invariants is check_invariants
    assert callable(fuzz.run_campaign)
    with pytest.raises(AttributeError):
        fuzz.does_not_exist
