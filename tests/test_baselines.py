"""Tests for the NetworkX oracle, the BSP engine and the static-recompute baseline."""

import networkx as nx
import pytest

from repro.arch.config import ChipConfig
from repro.baselines.bsp import BSPCostModel, BSPEngine, bsp_incremental_bfs
from repro.baselines.networkx_ref import (
    IncrementalOracle,
    build_networkx,
    reachable_counts_per_increment,
)
from repro.baselines.static_recompute import static_recompute_bfs
from repro.datasets.streaming import make_streaming_dataset
from repro.graph.rpvo import Edge, INFINITY

from helpers import requires_numpy, random_edges


class TestBuildNetworkx:
    def test_nodes_and_edges(self):
        g = build_networkx([Edge(0, 1), Edge(1, 2)], num_vertices=5)
        assert g.number_of_nodes() == 5
        assert g.number_of_edges() == 2
        assert g.is_directed()

    def test_parallel_edges_keep_min_weight(self):
        g = build_networkx([Edge(0, 1, 9), Edge(0, 1, 2)], num_vertices=2)
        assert g[0][1]["weight"] == 2

    def test_undirected_option(self):
        g = build_networkx([Edge(0, 1)], num_vertices=2, directed=False)
        assert not g.is_directed()


@requires_numpy
class TestIncrementalOracle:
    @pytest.fixture
    def dataset(self):
        return make_streaming_dataset(80, 600, sampling="edge", num_increments=4, seed=5)

    def test_apply_increment_accumulates(self, dataset):
        oracle = IncrementalOracle(dataset)
        for k in range(dataset.num_increments):
            oracle.apply_increment()
        assert oracle.increments_applied == dataset.num_increments
        assert oracle.graph.number_of_edges() <= dataset.total_edges

    def test_graph_after_matches_prefix(self, dataset):
        oracle = IncrementalOracle(dataset)
        g2 = oracle.graph_after(2)
        expected = build_networkx(dataset.prefix_edges(2), dataset.num_vertices)
        assert g2.number_of_edges() == expected.number_of_edges()

    def test_bfs_levels_and_missing_root(self, dataset):
        oracle = IncrementalOracle(dataset)
        oracle.apply_increment()
        levels = oracle.bfs_levels(0)
        assert levels.get(0) == 0
        assert oracle.bfs_levels(10**6) == {}

    def test_component_labels_partition_vertices(self, dataset):
        oracle = IncrementalOracle(dataset)
        oracle.apply_increment()
        labels = oracle.component_labels()
        assert set(labels) == set(range(dataset.num_vertices))
        for vid, label in labels.items():
            assert labels[label] == label

    def test_triangle_count_nonnegative(self, dataset):
        oracle = IncrementalOracle(dataset)
        oracle.apply_increment()
        assert oracle.triangle_count() >= 0

    def test_sssp_distances(self, dataset):
        oracle = IncrementalOracle(dataset)
        oracle.apply_increment()
        dists = oracle.sssp_distances(0)
        assert dists.get(0) == 0

    def test_reachable_counts_monotone(self, dataset):
        counts = reachable_counts_per_increment(dataset, root=0)
        assert len(counts) == dataset.num_increments
        assert all(b >= a for a, b in zip(counts, counts[1:]))


class TestBSPEngine:
    def test_validation(self):
        with pytest.raises(ValueError):
            BSPEngine(0)
        with pytest.raises(ValueError):
            BSPEngine(10, num_workers=0)

    def test_bfs_matches_networkx(self):
        num_vertices = 60
        edges = random_edges(num_vertices, 400, seed=1)
        engine = BSPEngine(num_vertices, num_workers=8)
        engine.add_edges(edges)
        result = engine.run_bfs(root=0)
        g = build_networkx(edges, num_vertices)
        expected = dict(nx.single_source_shortest_path_length(g, 0))
        got = {v: lvl for v, lvl in result.values.items() if lvl != INFINITY}
        assert got == expected

    def test_supersteps_equal_bfs_depth_plus_one(self):
        edges = [Edge(0, 1), Edge(1, 2), Edge(2, 3)]
        engine = BSPEngine(4, num_workers=2)
        engine.add_edges(edges)
        result = engine.run_bfs(root=0)
        assert result.supersteps == 4  # one per frontier level incl. last empty send

    def test_cost_includes_barrier_per_superstep(self):
        cost = BSPCostModel(barrier_cycles=1000)
        engine = BSPEngine(4, num_workers=2, cost_model=cost)
        engine.add_edges([Edge(0, 1), Edge(1, 2)])
        result = engine.run_bfs(root=0)
        assert result.estimated_cycles >= 1000 * result.supersteps

    @requires_numpy
    def test_incremental_warm_start_cheaper_than_cold(self):
        num_vertices = 120
        dataset = make_streaming_dataset(num_vertices, 1200, sampling="edge", seed=3)
        warm = bsp_incremental_bfs(num_vertices, dataset.increments, root=0)
        # Cold recompute of the final graph for reference correctness.
        engine = BSPEngine(num_vertices)
        engine.add_edges(dataset.all_edges())
        cold = engine.run_bfs(root=0)
        g = build_networkx(dataset.all_edges(), num_vertices)
        expected = dict(nx.single_source_shortest_path_length(g, 0))
        final_warm = {v: l for v, l in warm[-1].values.items() if l != INFINITY}
        assert final_warm == expected
        # warm-started increments touch only the affected frontier, so at
        # least some of them are cheaper than a cold full recompute.
        assert min(r.estimated_cycles for r in warm[1:]) <= cold.estimated_cycles
        assert sum(r.messages for r in warm[1:]) < len(warm[1:]) * cold.messages

    def test_superstep_cost_uses_slowest_worker(self):
        cost = BSPCostModel(barrier_cycles=10)
        assert cost.superstep_cost([5, 50, 1]) == 60
        assert cost.superstep_cost([]) == 10


class TestStaticRecompute:
    @requires_numpy
    def test_recompute_costs_grow_with_graph(self):
        chip = ChipConfig.small(edge_list_capacity=4)
        dataset = make_streaming_dataset(60, 500, sampling="edge",
                                         num_increments=4, seed=6)
        result = static_recompute_bfs(chip, dataset.increments, 60, root=0, seed=1)
        assert len(result.recompute_cycles) == 4
        assert len(result.ingestion_cycles) == 4
        # recomputing over a larger stored graph can only take more work:
        assert result.recompute_cycles[-1] >= result.recompute_cycles[0]
        assert all(c > 0 for c in result.total_cycles)
