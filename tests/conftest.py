"""Shared fixtures for the test suite."""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

import pytest

from repro.arch.config import ChipConfig
from repro.algorithms.bfs import StreamingBFS
from repro.datasets.streaming import StreamingDataset, make_streaming_dataset
from repro.graph.graph import DynamicGraph
from repro.graph.rpvo import Edge
from repro.runtime.device import AMCCADevice


@pytest.fixture
def small_chip() -> ChipConfig:
    """An 8x8 chip with a small edge-list capacity so ghosts appear quickly."""
    return ChipConfig.small(edge_list_capacity=4)


@pytest.fixture
def tiny_chip() -> ChipConfig:
    """A 4x4 chip for the very fine-grained unit tests."""
    return ChipConfig(width=4, height=4, edge_list_capacity=3)


@pytest.fixture
def device(small_chip) -> AMCCADevice:
    return AMCCADevice(small_chip)


def random_edges(num_vertices: int, num_edges: int, seed: int = 0,
                 weights: bool = False) -> List[Edge]:
    """A reproducible random directed edge list without self loops."""
    rng = random.Random(seed)
    edges: List[Edge] = []
    while len(edges) < num_edges:
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u == v:
            continue
        w = rng.randint(1, 9) if weights else 1
        edges.append(Edge(u, v, w))
    return edges


def build_bfs_graph(
    chip: ChipConfig,
    num_vertices: int,
    *,
    root: int = 0,
    seed: int = 3,
    ghost_allocator: str = "vicinity",
    ingest_only: bool = False,
) -> Tuple[AMCCADevice, DynamicGraph, StreamingBFS]:
    """Device + graph + seeded BFS, ready for streaming."""
    device = AMCCADevice(chip)
    graph = DynamicGraph(
        device,
        num_vertices,
        seed=seed,
        ghost_allocator=ghost_allocator,
        ingest_only=ingest_only,
    )
    bfs = StreamingBFS(root=root)
    graph.attach(bfs)
    bfs.seed(graph, root=root)
    return device, graph, bfs


@pytest.fixture
def small_dataset() -> StreamingDataset:
    """A 200-vertex edge-sampled dataset streamed over 5 increments."""
    return make_streaming_dataset(200, 1500, sampling="edge", num_increments=5, seed=11)


@pytest.fixture
def snowball_dataset() -> StreamingDataset:
    """A 200-vertex snowball-sampled dataset streamed over 5 increments."""
    return make_streaming_dataset(200, 1500, sampling="snowball", num_increments=5, seed=11)
