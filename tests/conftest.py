"""Shared fixtures for the test suite.

Plain helper functions (``random_edges``, ``build_bfs_graph``) live in
``tests/helpers.py`` and are imported explicitly by the test modules that
need them; importing them from ``conftest`` is unreliable because the
``conftest`` module name is shared with ``benchmarks/conftest.py``.
"""

from __future__ import annotations

import pytest

from repro.arch.config import ChipConfig
from repro.datasets.streaming import StreamingDataset, make_streaming_dataset
from repro.runtime.device import AMCCADevice

from helpers import (  # noqa: F401  (re-exported)
    build_bfs_graph,
    random_edges,
    register_hypothesis_profiles,
)

# Register "ci"/"deep" hypothesis profiles for the whole suite; pytest's
# --hypothesis-profile flag (applied later, at configure time) can still
# override the default loaded here.
register_hypothesis_profiles()


@pytest.fixture
def small_chip() -> ChipConfig:
    """An 8x8 chip with a small edge-list capacity so ghosts appear quickly."""
    return ChipConfig.small(edge_list_capacity=4)


@pytest.fixture
def tiny_chip() -> ChipConfig:
    """A 4x4 chip for the very fine-grained unit tests."""
    return ChipConfig(width=4, height=4, edge_list_capacity=3)


@pytest.fixture
def device(small_chip) -> AMCCADevice:
    return AMCCADevice(small_chip)


@pytest.fixture
def small_dataset() -> StreamingDataset:
    """A 200-vertex edge-sampled dataset streamed over 5 increments."""
    return make_streaming_dataset(200, 1500, sampling="edge", num_increments=5, seed=11)


@pytest.fixture
def snowball_dataset() -> StreamingDataset:
    """A 200-vertex snowball-sampled dataset streamed over 5 increments."""
    return make_streaming_dataset(200, 1500, sampling="snowball", num_increments=5, seed=11)
