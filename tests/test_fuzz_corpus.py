"""Replay every persisted fuzz find (``tests/corpus/``) through the oracle.

Each corpus entry is a shrunk scenario spec that once diverged (written by
``repro fuzz run`` on failure, or hand-seeded from a fuzz session).  Tier-1
replays the whole directory forever: an ``expect: ok`` entry must pass all
five invariants now that its bug is fixed; an ``expect: invalid`` entry
records a spec combination the harness has since learned to reject at
construction.  Committing a fuzz find is all it takes to pin it.
"""

from __future__ import annotations

import glob
import json
import os

import pytest

from repro._compat import HAVE_NUMPY
from repro.fuzz import check_invariants
from repro.harness.scenario import Scenario

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
ENTRIES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def _load(path):
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def test_corpus_is_nonempty():
    assert ENTRIES, f"no corpus entries under {CORPUS_DIR}"


@pytest.mark.parametrize("path", ENTRIES,
                         ids=[os.path.basename(p) for p in ENTRIES])
def test_corpus_entry_stays_fixed(path):
    entry = _load(path)
    spec = entry["scenario"]
    assert entry["failed"], "corpus entries must record what diverged"
    if entry.get("expect", "ok") == "invalid":
        with pytest.raises(ValueError):
            Scenario.from_dict(spec)
        return
    if spec["dataset"].get("generator", "sbm") == "sbm" and not HAVE_NUMPY:
        pytest.skip("sbm dataset generator needs numpy")
    report = check_invariants(Scenario.from_dict(spec))
    assert report.ok, (
        f"{os.path.basename(path)} regressed: "
        + "; ".join(f"{o.invariant}: {o.detail}" for o in report.failures))
