"""Tests for the future LCO (Figure 4's life cycle)."""

import pytest
from hypothesis import given, strategies as st

from repro.runtime.futures import Future, FutureError, FutureState


class TestLifeCycle:
    def test_starts_null(self):
        fut = Future()
        assert fut.is_null
        assert not fut.is_pending and not fut.is_fulfilled
        assert fut.peek() is None

    def test_null_to_pending(self):
        fut = Future()
        fut.set_pending()
        assert fut.is_pending
        assert fut.state is FutureState.PENDING

    def test_pending_to_fulfilled(self):
        fut = Future()
        fut.set_pending()
        released = fut.fulfil("address")
        assert fut.is_fulfilled
        assert fut.get() == "address"
        assert released == []

    def test_cannot_set_pending_twice(self):
        fut = Future()
        fut.set_pending()
        with pytest.raises(FutureError):
            fut.set_pending()

    def test_cannot_set_pending_after_fulfilment(self):
        fut = Future()
        fut.set_pending()
        fut.fulfil(1)
        with pytest.raises(FutureError):
            fut.set_pending()

    def test_cannot_fulfil_twice(self):
        fut = Future()
        fut.set_pending()
        fut.fulfil(1)
        with pytest.raises(FutureError):
            fut.fulfil(2)

    def test_get_before_fulfilment_raises(self):
        fut = Future()
        with pytest.raises(FutureError):
            fut.get()
        fut.set_pending()
        with pytest.raises(FutureError):
            fut.get()

    def test_fulfil_directly_from_null_is_allowed(self):
        """Fulfilling a never-pending future is legal (local immediate value)."""
        fut = Future()
        released = fut.fulfil(5)
        assert released == [] and fut.get() == 5


class TestDependentQueue:
    def test_enqueue_requires_pending(self):
        fut = Future()
        with pytest.raises(FutureError):
            fut.enqueue(lambda: None)

    def test_enqueue_after_fulfilment_raises(self):
        fut = Future()
        fut.set_pending()
        fut.fulfil(1)
        with pytest.raises(FutureError):
            fut.enqueue(lambda: None)

    def test_closures_released_in_fifo_order(self):
        fut = Future()
        fut.set_pending()
        order = []
        for i in range(5):
            fut.enqueue(lambda i=i: order.append(i))
        released = fut.fulfil("value")
        assert fut.queue_length == 0
        for closure in released:
            closure()
        assert order == [0, 1, 2, 3, 4]

    def test_queue_emptied_exactly_once(self):
        fut = Future()
        fut.set_pending()
        fut.enqueue(lambda: None)
        first = fut.fulfil(0)
        assert len(first) == 1
        assert fut.queue_length == 0

    def test_queue_length_reflects_enqueues(self):
        fut = Future()
        fut.set_pending()
        for i in range(3):
            fut.enqueue(lambda: None)
            assert fut.queue_length == i + 1


@given(st.integers(min_value=0, max_value=50))
def test_property_every_enqueued_closure_released_exactly_once(n):
    """Figure 4 invariant: all n dependent tasks run exactly once after fulfilment."""
    fut = Future()
    fut.set_pending()
    counts = [0] * n
    for i in range(n):
        fut.enqueue(lambda i=i: counts.__setitem__(i, counts[i] + 1))
    released = fut.fulfil("addr")
    assert len(released) == n
    for closure in released:
        closure()
    assert counts == [1] * n
