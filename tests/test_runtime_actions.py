"""Tests for the action registry, action context and cost accounting."""

import pytest

from repro.arch.address import Address
from repro.arch.config import ChipConfig
from repro.runtime.actions import ActionContext, ActionRegistry, action_cost
from repro.runtime.device import AMCCADevice


@pytest.fixture
def device():
    return AMCCADevice(ChipConfig(width=4, height=4))


def make_ctx(device, cc_id=0):
    return ActionContext(device, device.simulator.cell(cc_id))


class TestActionRegistry:
    def test_register_and_get(self):
        reg = ActionRegistry()
        handler = lambda ctx, obj: None
        reg.register("x", handler, size_words=5)
        assert reg.get("x") is handler
        assert reg.size_words("x") == 5
        assert "x" in reg

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            ActionRegistry().get("nope")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            ActionRegistry().register("", lambda: None)

    def test_reregistration_overwrites(self):
        reg = ActionRegistry()
        reg.register("x", lambda: 1)
        new = lambda: 2
        reg.register("x", new)
        assert reg.get("x") is new

    def test_names_sorted(self):
        reg = ActionRegistry()
        reg.register("b", lambda: None)
        reg.register("a", lambda: None)
        assert reg.names() == ["a", "b"]

    def test_default_size_words(self):
        reg = ActionRegistry()
        reg.register("x", lambda: None)
        assert reg.size_words("x") == 2


class TestActionCost:
    def test_known_kinds(self):
        assert action_cost("insert") == 2
        assert action_cost("edge_scan", 5) == 5

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError):
            action_cost("teleport")

    def test_minimum_units(self):
        assert action_cost("compare", 0) == 1


class TestActionContext:
    def test_charge_accumulates(self, device):
        ctx = make_ctx(device)
        ctx.charge(3)
        ctx.charge(2)
        cost, msgs = ctx.finish()
        assert cost == 1 + 5
        assert msgs == []

    def test_negative_charge_ignored(self, device):
        ctx = make_ctx(device)
        ctx.charge(-10)
        cost, _ = ctx.finish()
        assert cost == 1

    def test_propagate_builds_message(self, device):
        device.register_action("target-action", lambda ctx, obj: None, size_words=6)
        ctx = make_ctx(device, cc_id=2)
        target = Address(9, 0)
        msg = ctx.propagate("target-action", target, 1, 2)
        assert msg.src == 2 and msg.dst == 9
        assert msg.operands == (1, 2)
        assert msg.size_words == 6
        cost, msgs = ctx.finish()
        assert msgs == [msg]

    def test_propagate_unregistered_raises(self, device):
        ctx = make_ctx(device)
        with pytest.raises(KeyError):
            ctx.propagate("ghost-action", Address(0, 0))

    def test_propagate_size_words_override(self, device):
        device.register_action("a", lambda ctx, obj: None, size_words=2)
        ctx = make_ctx(device)
        msg = ctx.propagate("a", Address(1, 0), size_words=12)
        assert msg.size_words == 12

    def test_allocate_local_charges_and_stores(self, device):
        ctx = make_ctx(device, cc_id=1)
        addr = ctx.allocate_local({"v": 1}, words=3)
        assert addr.cc_id == 1
        assert device.simulator.cell(1).get(addr) == {"v": 1}
        cost, _ = ctx.finish()
        assert cost > 1  # allocation charged extra instructions

    def test_local_dereference(self, device):
        ctx = make_ctx(device, cc_id=0)
        addr = device.simulator.cell(0).allocate("payload")
        assert ctx.local(addr) == "payload"

    def test_schedule_local_enqueues_task(self, device):
        ctx = make_ctx(device, cc_id=3)
        ran = []
        ctx.schedule_local(lambda c: ran.append(c.cc_id), label="cb")
        ctx.finish()
        device.simulator.run(max_cycles=10)
        assert ran == [3]

    def test_cc_id_and_cycle_properties(self, device):
        ctx = make_ctx(device, cc_id=5)
        assert ctx.cc_id == 5
        assert ctx.cycle == device.simulator.cycle
        assert ctx.config is device.config
