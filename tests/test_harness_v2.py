"""Harness v2 tests: worker pool, sharding, timeouts, store lifecycle, bench.

Covers the PR-3 acceptance surface: sharded-parallel records byte-identical
to serial ones, per-task timeouts that record an outcome without killing
sibling scenarios, `suite diff` on before/after stores, compaction/GC that
preserves latest-version records, crash-safe store rewrites, and the
`repro bench` report/compare pipeline.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro import __version__
from repro.harness import (
    ChipSpec,
    DatasetSpec,
    ResultStore,
    Scenario,
    WorkerPool,
    diff_stores,
    get_pool,
    record_identity,
    render_store_diff,
    run_bench,
    run_scenario,
    run_scenario_sharded,
    run_suite,
    shard_spans,
    shutdown_pool,
)
from repro.harness.bench import (
    BENCH_AB_SCHEMA,
    BENCH_SCHEMA,
    ab_payload,
    bench_payload,
    compare_bench,
    load_bench,
    run_bench_ab,
    write_bench,
)

from helpers import requires_numpy


def tiny_scenario(name="t", algorithm="ingest", **dataset_kwargs) -> Scenario:
    """A scenario small enough that running it takes well under a second."""
    defaults = dict(vertices=64, edges=256, sampling="edge", seed=3)
    defaults.update(dataset_kwargs)
    return Scenario(
        name=name,
        dataset=DatasetSpec(**defaults),
        chip=ChipSpec(side=4),
        algorithm=algorithm,
    )


# Module-level task functions: pool tasks are pickled by reference.
def _double(x):
    return x * 2


def _sleep_then(seconds, value):
    time.sleep(seconds)
    return value


def _boom():
    raise RuntimeError("task exploded")


def _die():
    os._exit(17)


@pytest.fixture()
def pool2():
    pool = WorkerPool(2)
    yield pool
    pool.shutdown()


class TestWorkerPool:
    def test_results_in_submission_order(self, pool2):
        results = pool2.run_tasks([(_double, (i,)) for i in range(7)])
        assert [r.value for r in results] == [0, 2, 4, 6, 8, 10, 12]
        assert all(r.ok for r in results)

    def test_task_error_is_contained(self, pool2):
        results = pool2.run_tasks([(_boom, ()), (_double, (5,))])
        assert results[0].status == "error"
        assert "task exploded" in results[0].error
        assert results[1].ok and results[1].value == 10

    def test_worker_crash_is_contained_and_pool_recovers(self, pool2):
        results = pool2.run_tasks([(_die, ()), (_double, (3,))])
        statuses = [r.status for r in results]
        assert statuses[0] == "error" and statuses[1] == "ok"
        # The pool replaced the dead worker and stays usable.
        again = pool2.run_tasks([(_double, (4,))])
        assert again[0].value == 8 and pool2.size == 2

    def test_timeout_kills_only_the_overdue_task(self, pool2):
        results = pool2.run_tasks(
            [(_sleep_then, (10.0, "slow")), (_double, (6,)), (_double, (7,))],
            timeout=0.5,
        )
        assert results[0].status == "timeout"
        assert results[1].value == 12 and results[2].value == 14
        assert pool2.size == 2  # replacement spawned

    def test_worker_dying_while_idle_is_replaced(self, pool2):
        import signal

        pool2.run_tasks([(_double, (1,))])
        # Kill one worker between batches (simulates an external OOM kill);
        # the next batch must replace it instead of crashing on send.
        victim_pid = pool2.worker_pids()[0]
        os.kill(victim_pid, signal.SIGKILL)
        time.sleep(0.2)  # let the SIGKILL land; is_alive() reaps the zombie
        results = pool2.run_tasks([(_double, (i,)) for i in range(4)])
        assert [r.value for r in results] == [0, 2, 4, 6]
        assert pool2.size == 2

    def test_workers_persist_across_batches(self, pool2):
        pool2.run_tasks([(_double, (1,))])
        pids_first = sorted(pool2.worker_pids())
        pool2.run_tasks([(_double, (2,)) for _ in range(4)])
        assert sorted(pool2.worker_pids()) == pids_first

    def test_shared_pool_reused_and_resized(self):
        shutdown_pool()  # earlier suites may have left a larger shared pool
        try:
            a = get_pool(2)
            assert get_pool(2) is a
            b = get_pool(3)  # growing rebuilds
            assert b is not a and b.size == 3
            # A smaller request reuses the warm larger pool (callers cap
            # per-batch concurrency via run_tasks(max_workers=...)).
            assert get_pool(2) is b
        finally:
            shutdown_pool()

    def test_max_workers_caps_concurrency(self):
        pool = WorkerPool(4)
        try:
            started = time.monotonic()
            results = pool.run_tasks(
                [(_sleep_then, (0.2, i)) for i in range(4)], max_workers=1)
            elapsed = time.monotonic() - started
        finally:
            pool.shutdown()
        assert [r.value for r in results] == [0, 1, 2, 3]
        # Serialised: 4 x 0.2s tasks cannot finish in parallel time.
        assert elapsed >= 0.75


@requires_numpy
class TestSharding:
    def test_shard_spans_cover_contiguously(self):
        assert shard_spans(10, 3) == [(0, 3), (3, 7), (7, 10)]
        assert shard_spans(2, 8) == [(0, 1), (1, 2)]
        assert shard_spans(5, 1) == [(0, 5)]

    def test_sharded_record_byte_identical_to_serial(self):
        scenario = tiny_scenario("shard", "bfs")
        serial = run_scenario(scenario)
        sharded = run_scenario_sharded(scenario, 4)
        assert json.dumps(serial, sort_keys=True) == \
               json.dumps(sharded, sort_keys=True)

    def test_sharded_pooled_suite_store_byte_identical(self, tmp_path):
        suite = [tiny_scenario("s1", "ingest"), tiny_scenario("s2", "bfs")]
        serial_store = ResultStore(tmp_path / "serial.jsonl")
        sharded_store = ResultStore(tmp_path / "sharded.jsonl")
        run_suite(suite, jobs=1, store=serial_store)
        pool = WorkerPool(3)
        try:
            run_suite(suite, jobs=3, store=sharded_store, shard_increments=3,
                      pool=pool)
        finally:
            pool.shutdown()
        assert (tmp_path / "serial.jsonl").read_bytes() == \
               (tmp_path / "sharded.jsonl").read_bytes()

    def test_serial_jobs_still_shard_in_process(self, tmp_path, monkeypatch):
        # --shard-increments must not silently no-op at jobs=1: the serial
        # path routes through run_scenario_sharded (replay/merge exercised).
        from repro.harness import runner as runner_mod

        calls = []
        real = runner_mod.run_scenario_sharded

        def spy(scenario, shards, **kwargs):
            calls.append((scenario.name, shards))
            return real(scenario, shards, **kwargs)

        monkeypatch.setattr(runner_mod, "run_scenario_sharded", spy)
        store = ResultStore(tmp_path / "store.jsonl")
        report = run_suite([tiny_scenario("serial-shard", "bfs")],
                           jobs=1, store=store, shard_increments=3)
        assert calls == [("serial-shard", 3)]
        assert report.cache_misses == 1
        # Record equals the unsharded serial one.
        assert store.get(tiny_scenario("serial-shard", "bfs").spec_hash()) == \
               run_scenario(tiny_scenario("serial-shard", "bfs"))

    def test_sharded_runs_hit_the_same_cache(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        scenario = tiny_scenario("cacheable", "bfs")
        pool = WorkerPool(2)
        try:
            first = run_suite([scenario], jobs=2, store=store,
                              shard_increments=2, pool=pool)
        finally:
            pool.shutdown()
        assert first.cache_misses == 1
        second = run_suite([scenario], jobs=1, store=store)
        assert second.cache_hits == 1


@requires_numpy
class TestSuiteTimeouts:
    def test_timeout_recorded_without_killing_siblings(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        slow = tiny_scenario("slow", "bfs", vertices=1200, edges=12000)
        fast = tiny_scenario("fast", "ingest")
        pool = WorkerPool(2)
        try:
            report = run_suite([slow, fast], jobs=2, store=store,
                               timeout=0.1, pool=pool)
        finally:
            pool.shutdown()
        by_name = {o.scenario.name: o for o in report.outcomes}
        assert by_name["slow"].status == "timeout"
        assert by_name["slow"].record is None
        assert by_name["fast"].status == "ok"
        # Only the completed scenario lands in the store.
        assert len(store) == 1
        assert store.get(fast.spec_hash()) is not None
        assert [o.scenario.name for o in report.failures] == ["slow"]

    def test_timeout_applies_with_serial_jobs(self, tmp_path):
        # timeout forces process isolation even at jobs=1.
        slow = tiny_scenario("slow", "bfs", vertices=1200, edges=12000)
        pool = WorkerPool(1)
        try:
            report = run_suite([slow], jobs=1, timeout=0.1, pool=pool)
        finally:
            pool.shutdown()
        assert report.outcomes[0].status == "timeout"

    def test_expect_cached_refuses_to_compute(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        scenario = tiny_scenario("cold")
        report = run_suite([scenario], store=store, expect_cached=True)
        assert report.outcomes[0].status == "uncached"
        assert len(store) == 0 and report.failures
        # Warm the cache, then expect_cached passes.
        run_suite([scenario], store=store)
        warm = run_suite([scenario], store=store, expect_cached=True)
        assert warm.cache_hits == 1 and not warm.failures


class TestStoreLifecycle:
    def _record(self, name, version, *, cycles=100, seed=3):
        scenario = tiny_scenario(name, seed=seed)
        record = {
            "spec_hash": f"{name}-{version}",
            "name": name,
            "repro_version": version,
            "scenario": scenario.spec_dict(),
            "total_cycles": cycles,
            "energy": {"total_uj": 1.0, "time_us": 2.0},
        }
        return record

    def test_atomic_rewrite_survives_failed_replace(self, tmp_path, monkeypatch):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.put({"spec_hash": "keep", "value": 1})
        before = path.read_bytes()

        def broken_replace(src, dst):
            raise OSError("disk detached mid-replace")

        monkeypatch.setattr(os, "replace", broken_replace)
        with pytest.raises(OSError):
            store.put({"spec_hash": "lost", "value": 2})
        monkeypatch.undo()
        # The original file is untouched and no temp litter remains.
        assert path.read_bytes() == before
        assert list(tmp_path.glob("*.tmp")) == []
        assert ResultStore(path).get("keep") == {"spec_hash": "keep", "value": 1}

    def test_put_many_preserves_concurrent_appends(self, tmp_path):
        path = tmp_path / "store.jsonl"
        ours = ResultStore(path)
        ours.put({"spec_hash": "ours-1", "value": 1})
        # A second process (fresh handle) appends its own record.
        theirs = ResultStore(path)
        theirs.put({"spec_hash": "theirs-1", "value": 2})
        # Our stale handle writes again: their record must survive.
        ours.put({"spec_hash": "ours-2", "value": 3})
        final = ResultStore(path)
        assert {r["spec_hash"] for r in final} == \
               {"ours-1", "ours-2", "theirs-1"}

    def test_compact_keeps_latest_version_per_identity(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        store.put_many([
            self._record("exp", "1.1.0", cycles=90),
            self._record("exp", "1.2.0", cycles=100),
            self._record("other", "1.2.0"),
        ])
        dropped = store.compact()
        assert [r["repro_version"] for r in dropped] == ["1.1.0"]
        assert len(store) == 2
        assert store.get("exp-1.2.0")["total_cycles"] == 100
        # On-disk form was rewritten too.
        assert len((tmp_path / "store.jsonl").read_text().splitlines()) == 2
        # Idempotent.
        assert store.compact() == []

    def test_gc_drops_all_non_current_versions(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        store.put_many([
            self._record("old-only", "1.1.0"),
            self._record("current", __version__),
        ])
        dropped = store.gc()
        assert [r["name"] for r in dropped] == ["old-only"]
        assert [r["name"] for r in store] == ["current"]

    def test_stale_records_report(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        store.put_many([
            self._record("old", "0.9.0"),
            self._record("new", __version__),
        ])
        assert [r["name"] for r in store.stale_records()] == ["old"]

    def test_record_identity_ignores_version(self):
        a = self._record("same", "1.1.0", cycles=1)
        b = self._record("same", "1.2.0", cycles=2)
        assert a["spec_hash"] != b["spec_hash"]
        assert record_identity(a) == record_identity(b)


class TestStoreDiff:
    def test_diff_matches_across_versions_and_reports_deltas(self, tmp_path):
        mk = TestStoreLifecycle()._record
        store_a = ResultStore(tmp_path / "a.jsonl")
        store_b = ResultStore(tmp_path / "b.jsonl")
        store_a.put_many([
            mk("shared", "0.1.0", cycles=100),
            mk("gone", "0.1.0"),
        ])
        store_b.put_many([
            mk("shared", "0.2.0", cycles=140),
            mk("added", "0.2.0"),
        ])
        diff = diff_stores(store_a, store_b)
        assert not diff.identical
        assert [e.name for e in diff.changed] == ["shared"]
        (delta,) = [d for d in diff.changed[0].deltas
                    if d.metric == "total_cycles"]
        assert (delta.before, delta.after, delta.delta) == (100, 140, 40)
        assert delta.pct == pytest.approx(40.0)
        assert [r["name"] for r in diff.only_a] == ["gone"]
        assert [r["name"] for r in diff.only_b] == ["added"]
        # Both stores hold non-current versions -> everything is stale.
        assert len(diff.stale_a) == 2 and len(diff.stale_b) == 2
        rendered = render_store_diff(diff, label_a="before", label_b="after")
        assert "total_cycles" in rendered and "+40.0%" in rendered
        assert "only in before" in rendered and "only in after" in rendered

    @requires_numpy
    def test_diff_of_identical_stores_is_clean(self, tmp_path):
        scenario = tiny_scenario("same", "ingest")
        store_a = ResultStore(tmp_path / "a.jsonl")
        store_b = ResultStore(tmp_path / "b.jsonl")
        run_suite([scenario], store=store_a)
        run_suite([scenario], store=store_b)
        diff = diff_stores(store_a, store_b)
        assert diff.identical and not diff.changed
        assert "agree" in render_store_diff(diff)


class TestBench:
    @requires_numpy
    def test_run_bench_interleaves_and_reports_medians(self):
        scenarios = [tiny_scenario("w1", "ingest"), tiny_scenario("w2", "bfs")]
        results = run_bench(scenarios, reps=2)
        assert [r.name for r in results] == ["w1", "w2"]
        for result in results:
            assert len(result.sim_wall_s) == 2
            assert result.median_cycles_per_sec > 0
            assert result.total_cycles > 0

    @requires_numpy
    def test_payload_schema_and_round_trip(self, tmp_path):
        results = run_bench([tiny_scenario("w", "ingest")], reps=1)
        payload = bench_payload(results, tag="test", suite="custom", reps=1)
        assert payload["schema"] == BENCH_SCHEMA
        assert payload["repro_version"] == __version__
        path = write_bench(tmp_path / "BENCH_test.json", payload)
        assert load_bench(path) == payload

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "other/v9", "workloads": []}')
        with pytest.raises(ValueError, match="unsupported bench schema"):
            load_bench(path)

    def _payload(self, medians, *, version=__version__, cycles=None):
        cycles = cycles or {name: 1000 for name in medians}
        return {
            "schema": BENCH_SCHEMA,
            "repro_version": version,
            "workloads": [
                {"name": name, "median_cycles_per_sec": median,
                 "total_cycles": cycles[name]}
                for name, median in medians.items()
            ],
        }

    def test_compare_flags_regression_beyond_tolerance(self):
        baseline = self._payload({"w": 1000.0})
        ok = compare_bench(self._payload({"w": 800.0}), baseline,
                           tolerance=0.25)
        assert ok.passed
        bad = compare_bench(self._payload({"w": 700.0}), baseline,
                            tolerance=0.25)
        assert not bad.passed
        assert bad.failures[0].status == "regression"
        # Speedups never fail.
        fast = compare_bench(self._payload({"w": 5000.0}), baseline)
        assert fast.passed

    def test_compare_flags_cycle_drift_at_same_version(self):
        baseline = self._payload({"w": 1000.0}, cycles={"w": 1000})
        drift = compare_bench(
            self._payload({"w": 1000.0}, cycles={"w": 1001}), baseline)
        assert [r.status for r in drift.failures] == ["cycles-changed"]
        # A version bump legitimises changed cycles.
        bumped = compare_bench(
            self._payload({"w": 1000.0}, version="9.9.9",
                          cycles={"w": 1001}),
            baseline)
        assert bumped.passed

    def test_compare_flags_missing_and_new_workloads(self):
        baseline = self._payload({"kept": 1000.0, "dropped": 1000.0})
        current = self._payload({"kept": 1000.0, "added": 1000.0})
        comparison = compare_bench(current, baseline)
        statuses = {r.name: r.status for r in comparison.rows}
        assert statuses["dropped"] == "missing"
        assert statuses["added"] == "new"
        assert not comparison.passed  # missing fails, new does not


def _ab_kernels():
    """Every schedule-identical kernel pair member available here."""
    from repro.arch._native import HAVE_NATIVE

    kernels = ["python", "numpy"]
    if HAVE_NATIVE:
        kernels.append("native")
    return kernels


class TestBenchAb:
    @requires_numpy
    def test_run_bench_ab_reports_per_kernel_medians(self):
        kernels = _ab_kernels()
        scenarios = [tiny_scenario("w1", "ingest"), tiny_scenario("w2", "bfs")]
        results = run_bench_ab(scenarios, kernels, reps=2)
        assert sorted(results) == sorted(kernels)
        for kernel in kernels:
            assert [r.name for r in results[kernel]] == ["w1", "w2"]
            for result in results[kernel]:
                assert len(result.sim_wall_s) == 2
                assert result.median_cycles_per_sec > 0
        # The A/B doubles as a schedule-contract check: identical cycles.
        for i in range(2):
            assert len({results[k][i].total_cycles for k in kernels}) == 1

    def test_run_bench_ab_validates_kernel_list(self):
        with pytest.raises(ValueError, match="at least two"):
            run_bench_ab([tiny_scenario()], ["python"], reps=1)
        with pytest.raises(ValueError, match="duplicate"):
            run_bench_ab([tiny_scenario()], ["python", "python"], reps=1)

    @requires_numpy
    def test_ab_payload_schema_and_speedups(self, tmp_path):
        kernels = _ab_kernels()
        results = run_bench_ab([tiny_scenario("w", "ingest")], kernels, reps=1)
        payload = ab_payload(results, tag="test", suite="custom", reps=1)
        assert payload["schema"] == BENCH_AB_SCHEMA
        assert payload["kernels"] == kernels
        (workload,) = payload["workloads"]
        assert workload["speedup_vs_first"][kernels[0]] == 1.0
        assert set(workload["kernels"]) == set(kernels)
        # write_bench round-trips, but load_bench guards the plain schema.
        path = write_bench(tmp_path / "BENCH_ab.json", payload)
        assert json.loads(path.read_text()) == payload

    @requires_numpy
    def test_cli_bench_ab(self, tmp_path, capsys):
        from repro.cli import main

        out_json = tmp_path / "BENCH_ab.json"
        assert main(["bench", "--suite", "tiny", "--reps", "1",
                     "--ab", "python,numpy", "--json", str(out_json)]) == 0
        out = capsys.readouterr().out
        assert "numpy speedup" in out
        assert json.loads(out_json.read_text())["schema"] == BENCH_AB_SCHEMA

    def test_cli_bench_ab_rejects_bad_flag_combinations(self, capsys):
        from repro.cli import main

        assert main(["bench", "--ab", "python",
                     "--suite", "tiny"]) == 2
        assert ">= 2 comma-separated kernels" in capsys.readouterr().err
        assert main(["bench", "--ab", "python,native", "--suite", "tiny",
                     "--baseline", "whatever.json"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err


class TestCliIntegration:
    @requires_numpy
    def test_suite_run_shard_flags_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        store_a = tmp_path / "serial.jsonl"
        store_b = tmp_path / "sharded.jsonl"
        assert main(["suite", "run", "--preset", "tiny", "--serial",
                     "--store", str(store_a)]) == 0
        assert main(["suite", "run", "--preset", "tiny", "-j", "2",
                     "--shard-increments", "2", "--store", str(store_b)]) == 0
        capsys.readouterr()
        assert store_a.read_bytes() == store_b.read_bytes()
        shutdown_pool()

    @requires_numpy
    def test_suite_diff_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        store_a = tmp_path / "a.jsonl"
        store_b = tmp_path / "b.jsonl"
        run_suite([tiny_scenario("d")], store=ResultStore(store_a))
        run_suite([tiny_scenario("d")], store=ResultStore(store_b))
        assert main(["suite", "diff", str(store_a), str(store_b)]) == 0
        record = json.loads(store_b.read_text())
        record["total_cycles"] += 7
        store_b.write_text(json.dumps(record) + "\n")
        assert main(["suite", "diff", str(store_a), str(store_b)]) == 1
        out = capsys.readouterr().out
        assert "total_cycles" in out

    def test_diff_and_store_commands_reject_missing_paths(self, tmp_path, capsys):
        from repro.cli import main

        missing = str(tmp_path / "nope.jsonl")
        assert main(["suite", "diff", missing, missing]) == 2
        assert main(["store", "compact", missing]) == 2
        assert main(["store", "gc", missing]) == 2
        err = capsys.readouterr().err
        assert "no such result store" in err

    def test_store_compact_and_gc_commands(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "store.jsonl"
        mk = TestStoreLifecycle()._record
        ResultStore(path).put_many([
            mk("exp", "1.1.0"),
            mk("exp", __version__),
            mk("old-only", "1.0.0"),
        ])
        assert main(["store", "compact", str(path)]) == 0
        assert len(ResultStore(path)) == 2
        assert main(["store", "gc", str(path)]) == 0
        survivors = [r["name"] for r in ResultStore(path)]
        assert survivors == ["exp"]
        capsys.readouterr()

    @requires_numpy
    def test_bench_command_writes_and_compares(self, tmp_path, capsys):
        from repro.cli import main

        report = tmp_path / "BENCH_test.json"
        assert main(["bench", "--suite", "tiny", "--reps", "1",
                     "--tag", "test", "--json", str(report)]) == 0
        payload = load_bench(report)
        assert payload["tag"] == "test"
        assert {w["name"] for w in payload["workloads"]} == \
               {"tiny-ingest", "tiny-bfs"}
        # Wide tolerance: this asserts the compare wiring and exit code, not
        # perf stability (1-rep wall times of a ~50 ms workload are noisy).
        assert main(["bench", "--suite", "tiny", "--reps", "1",
                     "--baseline", str(report), "--tolerance", "0.9"]) == 0
        capsys.readouterr()
