"""Equivalence of the array-based NoC fast path with the reference model.

The array-keyed :class:`~repro.arch.noc.CycleAccurateNoC` must be
indistinguishable from the dictionary-based
:class:`~repro.arch.noc.ReferenceCycleAccurateNoC` (the executable spec):
same delivery order, same delivery cycles, same hop counts and same link
statistics, from single-message cases through full fixed-seed simulations.
Also covers the link-id tables, the link-id route construction, per-link
busy accounting and the batched latency model.
"""

import random

import pytest

from repro.arch.config import ChipConfig
from repro.arch.message import Message
from repro.arch.noc import (
    CycleAccurateNoC,
    LatencyNoC,
    ReferenceCycleAccurateNoC,
    build_noc,
)
from repro.arch.routing import LinkTable, make_routing
from repro.arch.stats import SimStats
from repro.datasets.streaming import make_streaming_dataset
from repro.graph.graph import DynamicGraph
from repro.runtime.device import AMCCADevice

from helpers import requires_numpy


def make_pair(width=8, height=8, routing="yx", max_message_words=8,
              per_link=False):
    """A (fast, reference) NoC pair over identical configs."""
    nocs = []
    for _ in range(2):
        cfg = ChipConfig(width=width, height=height, routing=routing,
                         max_message_words=max_message_words)
        stats = SimStats(num_cells=cfg.num_cells)
        pol = make_routing(cfg)
        if per_link:
            stats.enable_link_accounting(pol.link_table.num_links)
        nocs.append((cfg, stats, pol))
    cfg_a, stats_a, pol_a = nocs[0]
    cfg_b, stats_b, pol_b = nocs[1]
    fast = CycleAccurateNoC(cfg_a, pol_a, stats_a)
    ref = ReferenceCycleAccurateNoC(cfg_b, pol_b, stats_b)
    return fast, ref


def drain_schedule(noc, injections, max_cycles=50_000):
    """Inject per schedule and drain; return [(cycle, msg_id, hops), ...].

    ``injections`` is a list of (cycle, src, dst, size_words) tuples sorted
    by cycle; messages are injected before the advance of their cycle, the
    same order the simulator uses for IO injections.
    """
    out = []
    pending = list(injections)
    cycle = 0
    while (pending or not noc.is_empty) and cycle < max_cycles:
        while pending and pending[0][0] == cycle:
            _, src, dst, size = pending.pop(0)
            noc.inject(Message(src=src, dst=dst, action="a", size_words=size),
                       cycle)
        for msg in noc.advance(cycle):
            out.append((cycle, msg.msg_id, msg.hops))
        cycle += 1
    assert noc.is_empty, "drain did not converge"
    return out


def normalize(schedule):
    """Rebase global msg_ids to injection-order indices for comparison.

    The two NoCs under test inject distinct Message objects, so their raw
    msg_ids differ by a constant offset of the global counter.
    """
    base = min(m for _, m, _ in schedule) if schedule else 0
    return [(c, m - base, h) for c, m, h in schedule]


class TestLinkTable:
    def test_ids_are_dense_and_invertible(self):
        cfg = ChipConfig(width=5, height=3)
        table = LinkTable(cfg)
        assert table.num_links == 4 * cfg.num_cells
        for u in range(cfg.num_cells):
            for v in cfg.neighbors(u):
                lid = table.lid(u, v)
                assert table.is_valid(lid)
                assert table.endpoints(lid) == (u, v)

    def test_border_slots_are_invalid(self):
        cfg = ChipConfig(width=4, height=4)
        table = LinkTable(cfg)
        invalid = [lid for lid in range(table.num_links) if not table.is_valid(lid)]
        # Each border cell is missing one link per adjacent border.
        assert len(invalid) == 4 * 4  # 4 sides x 4 cells on a 4x4 mesh
        assert all(table.dst[lid] == -1 for lid in invalid)

    def test_lid_order_matches_lexicographic_endpoint_order(self):
        cfg = ChipConfig(width=4, height=4)
        table = LinkTable(cfg)
        pairs = [table.endpoints(lid) for lid in range(table.num_links)
                 if table.is_valid(lid)]
        assert pairs == sorted(pairs)

    def test_non_neighbours_rejected(self):
        table = LinkTable(ChipConfig(width=4, height=4))
        with pytest.raises(ValueError):
            table.lid(0, 5)

    def test_describe(self):
        table = LinkTable(ChipConfig(width=4, height=4))
        assert table.describe(table.lid(1, 5)) == "1->5 (south)"


class TestRouteLids:
    @pytest.mark.parametrize("routing", ["yx", "xy"])
    def test_route_lids_matches_next_hop_walk(self, routing):
        cfg = ChipConfig(width=7, height=5, routing=routing)
        policy = make_routing(cfg)
        table = policy.link_table
        rng = random.Random(3)
        for _ in range(200):
            src = rng.randrange(cfg.num_cells)
            dst = rng.randrange(cfg.num_cells)
            lids = policy.route_lids(src, dst)
            # Walk next_hop and rebuild the expected link-id list.
            expected = []
            cur = src
            while cur != dst:
                nxt = policy.next_hop(cur, dst)
                expected.append(table.lid(cur, nxt))
                cur = nxt
            assert lids == expected, (routing, src, dst)

    def test_cached_routes_are_shared_and_equal(self):
        cfg = ChipConfig(width=6, height=6)
        policy = make_routing(cfg)
        a = policy.route_lids_cached(3, 27)
        b = policy.route_lids_cached(3, 27)
        assert a is b
        assert a == policy.route_lids(3, 27)

    def test_route_length_is_manhattan(self):
        cfg = ChipConfig(width=9, height=9)
        policy = make_routing(cfg)
        for src, dst in ((0, 80), (5, 5), (8, 72), (40, 0)):
            assert len(policy.route_lids(src, dst)) == cfg.manhattan(src, dst)


class TestScheduleEquivalence:
    """The fast path and the reference produce byte-identical schedules."""

    def test_single_message(self):
        fast, ref = make_pair()
        sched = [(0, 0, 27, 2)]
        assert normalize(drain_schedule(fast, sched)) == normalize(drain_schedule(ref, sched))

    def test_two_messages_contending_for_one_link(self):
        # Both messages need the same first link: FIFO order decides, and
        # both models must agree on it.
        fast, ref = make_pair()
        cfg = ChipConfig(width=8, height=8)
        src, dst = cfg.cc_at(2, 2), cfg.cc_at(2, 6)
        sched = [(0, src, dst, 2), (0, src, dst, 2)]
        a = drain_schedule(fast, sched)
        b = drain_schedule(ref, sched)
        assert normalize(a) == normalize(b)
        assert len({c for c, _, _ in a}) == 2  # serialized on the shared links

    def test_corner_turn_routes_contend_identically(self):
        # Routes that turn at the same corner cell share only the post-turn
        # links; the queue order at the merge point must match.
        fast, ref = make_pair()
        cfg = ChipConfig(width=8, height=8)
        sched = [
            (0, cfg.cc_at(0, 0), cfg.cc_at(5, 4), 2),
            (0, cfg.cc_at(0, 4), cfg.cc_at(5, 4), 2),
            (1, cfg.cc_at(0, 2), cfg.cc_at(5, 4), 2),
        ]
        assert normalize(drain_schedule(fast, sched)) == normalize(drain_schedule(ref, sched))

    def test_multi_flit_messages(self):
        fast, ref = make_pair(max_message_words=4)
        sched = [(0, 0, 18, 8), (0, 0, 18, 12), (2, 3, 18, 4)]
        assert normalize(drain_schedule(fast, sched)) == normalize(drain_schedule(ref, sched))
        assert fast.stats.hops == ref.stats.hops

    def test_local_deliveries_first(self):
        fast, ref = make_pair()
        sched = [(0, 9, 9, 2), (0, 9, 17, 2)]
        assert normalize(drain_schedule(fast, sched)) == normalize(drain_schedule(ref, sched))

    @pytest.mark.parametrize("routing", ["yx", "xy"])
    def test_random_storm(self, routing):
        fast, ref = make_pair(routing=routing)
        rng = random.Random(42)
        n = 64
        sched = sorted(
            (rng.randrange(30), rng.randrange(n), rng.randrange(n),
             rng.choice((2, 2, 2, 8, 12)))
            for _ in range(300)
        )
        a = drain_schedule(fast, sched)
        b = drain_schedule(ref, sched)
        assert normalize(a) == normalize(b)
        for field in ("hops", "link_busy", "messages_injected"):
            assert getattr(fast.stats, field) == getattr(ref.stats, field), field

    def test_per_link_busy_identical(self):
        fast, ref = make_pair(per_link=True)
        rng = random.Random(7)
        sched = sorted(
            (rng.randrange(10), rng.randrange(64), rng.randrange(64), 2)
            for _ in range(120)
        )
        drain_schedule(fast, sched)
        drain_schedule(ref, sched)
        table = fast.link_table
        assert fast.stats.link_busy_per_link == ref.stats.link_busy_per_link
        util = fast.stats.link_utilization(table)
        assert sum(util.values()) == fast.stats.link_busy
        hottest = fast.stats.hottest_links(table, k=3)
        assert hottest == sorted(util.items(), key=lambda kv: (-kv[1], kv[0]))[:3]


@requires_numpy
class TestFullSimulationEquivalence:
    """Fixed-seed end-to-end runs: fidelity='cycle' == fidelity='cycle-ref'."""

    @pytest.mark.parametrize("sampling", ["edge", "snowball"])
    def test_streaming_bfs_records_identical(self, sampling):
        records = {}
        for fidelity in ("cycle", "cycle-ref"):
            dataset = make_streaming_dataset(
                150, 1200, sampling=sampling, num_increments=4, seed=11)
            chip = ChipConfig(width=8, height=8, edge_list_capacity=8,
                              fidelity=fidelity)
            device = AMCCADevice(chip)
            graph = DynamicGraph(device, dataset.num_vertices, seed=5)
            from repro.algorithms.bfs import StreamingBFS
            bfs = StreamingBFS(root=0)
            graph.attach(bfs)
            bfs.seed(graph, root=0)
            cycles = []
            delivery_order = []
            device.simulator.add_cycle_hook(lambda c: None)
            for i, increment in enumerate(dataset.increments, start=1):
                result = graph.stream_increment(increment, phase=f"inc-{i}")
                cycles.append(result.cycles)
            stats = device.stats()
            records[fidelity] = {
                "increment_cycles": cycles,
                "summary": stats.summary(),
                "bfs": bfs.results(graph),
            }
        fast, ref = records["cycle"], records["cycle-ref"]
        assert fast["increment_cycles"] == ref["increment_cycles"]
        assert fast["summary"] == ref["summary"]
        assert fast["bfs"] == ref["bfs"]

    def test_build_noc_selects_reference(self):
        cfg = ChipConfig(width=4, height=4, fidelity="cycle-ref")
        stats = SimStats(num_cells=cfg.num_cells)
        assert isinstance(build_noc(cfg, stats), ReferenceCycleAccurateNoC)


class TestLatencyBatched:
    def test_batched_and_legacy_modes_identical(self):
        cfg = ChipConfig(width=8, height=8, fidelity="latency")
        rng = random.Random(13)
        results = []
        for batched in (True, False):
            stats = SimStats(num_cells=cfg.num_cells)
            noc = LatencyNoC(cfg, make_routing(cfg), stats, batched=batched)
            rng_local = random.Random(13)
            msgs = [
                Message(src=rng_local.randrange(64), dst=rng_local.randrange(64),
                        action="a")
                for _ in range(200)
            ]
            for m in msgs:
                noc.inject(m, cycle=0)
            out = []
            cycle = 1
            while not noc.is_empty and cycle < 1000:
                out.extend((cycle, m.msg_id - msgs[0].msg_id)
                           for m in noc.advance(cycle))
                cycle += 1
            results.append((out, stats.hops))
        assert results[0] == results[1]

    def test_batched_is_default(self):
        cfg = ChipConfig(width=4, height=4, fidelity="latency")
        stats = SimStats(num_cells=cfg.num_cells)
        noc = build_noc(cfg, stats)
        assert isinstance(noc, LatencyNoC) and noc.batched
