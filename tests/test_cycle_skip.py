"""Event-driven cycle skipping and truncation-safe parked-cell accounting.

``Simulator.run`` may jump the clock over provably idle spans (all busy
cells parked, IO drained, NoC empty or in predictable drift).  These tests
pin the two guarantees that make the feature safe:

* **Transparency** — for every workload and every ``max_cycles`` budget
  (including budgets landing *inside* a skipped span), a skipping run
  produces exactly the statistics and cycle counts of the cycle-by-cycle
  run, while stepping strictly fewer times.
* **Truncation accounting** — ``Simulator.finalize`` credits the elapsed
  portion of parked cells' instruction burns (the ROADMAP's
  parked-cell-accounting item), idempotently, and without double counting
  when a truncated run is resumed.
"""

import pytest

from repro.arch.config import ChipConfig
from repro.runtime.device import AMCCADevice
from repro.runtime.terminator import Terminator


def build_relay_device(fidelity="cycle", fast_park=True, cycle_skip=True):
    """A device whose workload alternates long burns with lone far messages.

    A ``relay`` action charges a long instruction burn (so the cell parks)
    and then propagates a single message to the opposite corner (so exactly
    one flit crosses the mesh alone) -- together exercising the parked-only,
    single-flit and (in latency mode) deadline fast-forward paths.
    """
    device = AMCCADevice(ChipConfig.small().with_(fidelity=fidelity))
    sim = device.simulator
    sim._fast_park = fast_park
    sim.cycle_skip = cycle_skip
    cfg = device.config
    corners = [cfg.cc_at(1, 1), cfg.cc_at(6, 6)]
    targets = [device.allocate_on(cc, {"hits": 0}) for cc in corners]

    def relay(ctx, obj, k):
        obj["hits"] += 1
        ctx.charge(12)
        if k > 0:
            nxt = targets[k % 2]
            ctx.propagate("relay", nxt, k - 1)

    device.register_action("relay", relay)
    device.send("relay", targets[0], 6)
    return device, sim


def run_relay(fidelity="cycle", fast=True, max_cycles=None):
    """Run the relay workload; return (summary, cycles, steps_executed)."""
    device, sim = build_relay_device(fidelity, fast_park=fast, cycle_skip=fast)
    steps = [0]
    orig_step = sim.step

    def counting_step():
        steps[0] += 1
        return orig_step()

    sim.step = counting_step
    result = device.run(Terminator(), max_cycles=max_cycles)
    summary = device.stats().summary()
    return summary, result.cycles, steps[0]


class TestSkipTransparency:
    @pytest.mark.parametrize("fidelity", ["cycle", "latency"])
    def test_full_run_identical_and_fewer_steps(self, fidelity):
        slow = run_relay(fidelity, fast=False)
        fast = run_relay(fidelity, fast=True)
        assert fast[0] == slow[0]          # bit-identical statistics
        assert fast[1] == slow[1]          # same simulated cycles
        assert fast[2] < slow[2]           # strictly fewer Python steps
        assert fast[2] < fast[1]           # some cycles were skipped

    @pytest.mark.parametrize("fidelity", ["cycle", "latency"])
    def test_every_truncation_point_is_identical(self, fidelity):
        full_cycles = run_relay(fidelity, fast=False)[1]
        for budget in range(1, full_cycles + 2, 7):
            slow = run_relay(fidelity, fast=False, max_cycles=budget)
            fast = run_relay(fidelity, fast=True, max_cycles=budget)
            assert fast[1] == slow[1] == min(budget, full_cycles), budget
            assert fast[0] == slow[0], f"stats diverge at budget {budget}"

    def test_budget_inside_skipped_span_stops_exactly_on_budget(self):
        # Find a budget that lands strictly inside a skipped span: run fast,
        # note a cycle that was jumped over, and truncate there.
        device, sim = build_relay_device()
        stepped = set()
        orig_step = sim.step

        def recording_step():
            stepped.add(sim.cycle)
            return orig_step()

        sim.step = recording_step
        device.run(Terminator())
        skipped = sorted(set(range(sim.cycle)) - stepped)
        assert skipped, "workload must produce skipped cycles"
        budget = skipped[len(skipped) // 2]
        slow = run_relay("cycle", fast=False, max_cycles=budget)
        fast = run_relay("cycle", fast=True, max_cycles=budget)
        assert fast == (slow[0], budget, fast[2])

    def test_hooks_disable_skipping(self):
        device, sim = build_relay_device()
        sim.add_cycle_hook(lambda c: None)
        steps = [0]
        orig_step = sim.step

        def counting_step():
            steps[0] += 1
            return orig_step()

        sim.step = counting_step
        result = device.run(Terminator())
        assert steps[0] == result.cycles  # every cycle stepped


class TestTruncationAccounting:
    def test_finalize_credits_mid_park_burns(self):
        # Truncate inside the very first burn: the unparked reference counts
        # one instruction per elapsed cycle; finalize() must agree.
        for budget in (3, 5, 9, 12):
            slow = run_relay("cycle", fast=False, max_cycles=budget)
            fast = run_relay("cycle", fast=True, max_cycles=budget)
            assert fast[0]["instructions"] == slow[0]["instructions"], budget

    def test_finalize_is_idempotent(self):
        device, sim = build_relay_device()
        device.run(Terminator(), max_cycles=9)
        first = device.stats().summary()
        second = device.stats().summary()
        assert first == second

    def test_resumed_run_does_not_double_count(self):
        reference = run_relay("cycle", fast=False)[0]

        device, sim = build_relay_device()
        terminator = Terminator()
        device.run(terminator, max_cycles=9)
        # Mid-run reconciliation (e.g. a report between increments)...
        device.stats()
        # ...then resume to completion: totals must match the straight run.
        device.run(terminator)
        assert device.stats().summary() == reference

    def test_busy_cycles_credited_on_cells(self):
        device, sim = build_relay_device()
        device.run(Terminator(), max_cycles=9)
        device.stats()
        busy_fast = sum(cell.busy_cycles for cell in sim.cells)

        device2, sim2 = build_relay_device()
        sim2._fast_park = False
        sim2.cycle_skip = False
        device2.run(Terminator(), max_cycles=9)
        busy_slow = sum(cell.busy_cycles for cell in sim2.cells)
        assert busy_fast == busy_slow
