"""Property-based end-to-end tests over randomly generated streams.

Hypothesis drives small random edge streams through the whole stack (IO
cells -> NoC -> insert-edge-action -> RPVO -> BFS diffusion) and checks the
two invariants that matter most:

* the multiset of edges read back from the chip equals the multiset streamed
  in, regardless of ordering, ghost overflow or allocator choice;
* converged BFS levels equal NetworkX shortest-path lengths on the same edge
  set, for any stream order and any increment split.
"""

import networkx as nx
from hypothesis import given, strategies as st

from repro.arch.config import ChipConfig
from repro.algorithms.bfs import StreamingBFS
from repro.baselines.networkx_ref import build_networkx
from repro.graph.graph import DynamicGraph
from repro.graph.rpvo import Edge
from repro.runtime.device import AMCCADevice

NUM_VERTICES = 24

edge_strategy = st.tuples(
    st.integers(min_value=0, max_value=NUM_VERTICES - 1),
    st.integers(min_value=0, max_value=NUM_VERTICES - 1),
).filter(lambda p: p[0] != p[1])

stream_strategy = st.lists(edge_strategy, min_size=0, max_size=120)

# Example budgets, deadlines and health-check suppressions come from the
# shared "ci"/"deep" hypothesis profiles registered in conftest.py (see
# helpers.register_hypothesis_profiles).


def build(capacity: int, allocator: str):
    chip = ChipConfig(width=4, height=4, edge_list_capacity=capacity)
    device = AMCCADevice(chip)
    graph = DynamicGraph(device, NUM_VERTICES, seed=1, ghost_allocator=allocator)
    bfs = StreamingBFS(root=0)
    graph.attach(bfs)
    bfs.seed(graph, root=0)
    return graph, bfs


@given(pairs=stream_strategy, capacity=st.integers(min_value=1, max_value=6),
       allocator=st.sampled_from(["vicinity", "random"]))
def test_property_edge_multiset_preserved(pairs, capacity, allocator):
    graph, _ = build(capacity, allocator)
    edges = [Edge(u, v) for u, v in pairs]
    if edges:
        graph.stream_increment(edges)
    expected: dict = {}
    for u, v in pairs:
        expected[(u, v)] = expected.get((u, v), 0) + 1
    stored: dict = {}
    for vid in range(NUM_VERTICES):
        for dst, _w in graph.edges_of(vid):
            stored[(vid, dst)] = stored.get((vid, dst), 0) + 1
    assert stored == expected
    # No block ever exceeds its capacity.
    for vid in range(NUM_VERTICES):
        for block in graph.blocks_of(vid):
            assert block.degree_local <= block.capacity


@given(pairs=stream_strategy, splits=st.integers(min_value=1, max_value=4),
       capacity=st.integers(min_value=2, max_value=8))
def test_property_bfs_matches_networkx_for_any_increment_split(pairs, splits, capacity):
    graph, bfs = build(capacity, "vicinity")
    edges = [Edge(u, v) for u, v in pairs]
    chunk = max(1, len(edges) // splits)
    for start in range(0, len(edges), chunk):
        graph.stream_increment(edges[start:start + chunk])
    expected = {}
    g = build_networkx(edges, NUM_VERTICES)
    expected = dict(nx.single_source_shortest_path_length(g, 0))
    assert bfs.results(graph) == expected
